//! Persistence semantics: for every index type, `load(save(index))` must
//! answer **byte-identically** to the original on every surface — `search`,
//! `search_all`, `search_all_tagged`, `search_batch`, `search_batch_best`,
//! and `similarity_join` — including indexes that were mutated before being
//! saved, and whole sharded deployments at every shard count under both
//! strategies.
//!
//! A second block pins the failure contract: truncated files, wrong magic,
//! unsupported versions, mismatched container kinds, and flipped payload
//! bytes must all surface as typed [`PersistError`]s — never panics, never a
//! silently wrong index. A proptest block randomizes the dataset and query
//! stream over the correlated index round trip.

use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};
use skewsearch::baselines::{ChosenPathIndex, ChosenPathParams, MinHashLsh, MinHashParams};
use skewsearch::core::{
    AdversarialIndex, AdversarialParams, CorrelatedIndex, CorrelatedParams, CorrelatedScheme,
    IndexOptions, LsfIndex, Persist, PersistError, Repetitions, SetSimilaritySearch, ShardStrategy,
    ShardedIndex,
};
use skewsearch::datagen::{correlated_query, BernoulliProfile, Dataset, VectorSampler};
use skewsearch::join::similarity_join;
use skewsearch::sets::SparseVec;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

const SEED: u64 = 0xD15C;
const ALPHA: f64 = 0.7;
const STRATEGIES: [ShardStrategy; 2] = [ShardStrategy::ByRepetition, ShardStrategy::ByDataset];

/// A collision-free scratch path (no wall clock: process id + counter).
fn scratch(label: &str) -> PathBuf {
    static UNIQUE: AtomicUsize = AtomicUsize::new(0);
    std::env::temp_dir().join(format!(
        "skewsearch_persist_{label}_{}_{}",
        std::process::id(),
        UNIQUE.fetch_add(1, Ordering::Relaxed)
    ))
}

fn fixture(n: usize, seed: u64) -> (Dataset, BernoulliProfile, Vec<SparseVec>) {
    let profile = BernoulliProfile::blocks(&[(60, 0.2), (900, 0.01)]).unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    let ds = Dataset::generate(&profile, n, &mut rng);
    let mut queries: Vec<SparseVec> = (0..20)
        .map(|t| correlated_query(ds.vector(t * 11 % n.max(1)), &profile, ALPHA, &mut rng))
        .collect();
    queries.push(SparseVec::empty()); // degenerate query rides along
    (ds, profile, queries)
}

fn opts(reps: usize) -> IndexOptions {
    IndexOptions {
        repetitions: Repetitions::Fixed(reps),
        ..IndexOptions::default()
    }
}

/// The core assertion: every answer surface of the reloaded index equals the
/// original's, byte for byte.
fn assert_same_answers<I: SetSimilaritySearch>(
    original: &I,
    reloaded: &I,
    queries: &[SparseVec],
    label: &str,
) {
    assert_eq!(reloaded.len(), original.len(), "{label} len");
    assert_eq!(
        reloaded.threshold(),
        original.threshold(),
        "{label} threshold"
    );
    for (i, q) in queries.iter().enumerate() {
        assert_eq!(reloaded.search(q), original.search(q), "{label} q={i}");
        assert_eq!(
            reloaded.search_all(q),
            original.search_all(q),
            "{label} q={i}"
        );
        assert_eq!(
            reloaded.search_all_tagged(q),
            original.search_all_tagged(q),
            "{label} q={i}"
        );
    }
    assert_eq!(
        reloaded.search_batch(queries),
        original.search_batch(queries),
        "{label} batch"
    );
    assert_eq!(
        reloaded.search_batch_best(queries),
        original.search_batch_best(queries),
        "{label} batch_best"
    );
    assert_eq!(
        similarity_join(queries, reloaded),
        similarity_join(queries, original),
        "{label} join"
    );
}

/// Round-trips `index` through a scratch file and checks every surface.
fn assert_round_trip<I: Persist + SetSimilaritySearch>(
    index: &I,
    queries: &[SparseVec],
    label: &str,
) -> I {
    let path = scratch(label);
    index
        .save(&path)
        .unwrap_or_else(|e| panic!("{label} save: {e}"));
    let reloaded = I::load(&path).unwrap_or_else(|e| panic!("{label} load: {e}"));
    let _ = std::fs::remove_file(&path);
    assert_same_answers(index, &reloaded, queries, label);
    reloaded
}

#[test]
fn lsf_index_round_trips() {
    let (ds, profile, queries) = fixture(250, SEED);
    let mut rng = StdRng::seed_from_u64(SEED ^ 1);
    let scheme = CorrelatedScheme::new(ALPHA, ds.n(), &profile);
    let index = LsfIndex::build(
        ds.vectors().to_vec(),
        profile.clone(),
        scheme,
        ALPHA / 1.3,
        opts(6),
        &mut rng,
    );
    assert_round_trip(&index, &queries, "LsfIndex");
}

#[test]
fn correlated_index_round_trips_with_diagnostics() {
    let (ds, profile, queries) = fixture(250, SEED ^ 2);
    let mut rng = StdRng::seed_from_u64(SEED ^ 3);
    let params = CorrelatedParams::new(ALPHA).unwrap().with_options(opts(6));
    let index = CorrelatedIndex::build(&ds, &profile, params, &mut rng);
    let reloaded = assert_round_trip(&index, &queries, "CorrelatedIndex");
    assert_eq!(reloaded.alpha(), index.alpha());
    assert_eq!(reloaded.diagnostics().c, index.diagnostics().c);
    assert_eq!(
        reloaded.diagnostics().warnings,
        index.diagnostics().warnings
    );
}

#[test]
fn adversarial_index_round_trips() {
    let (ds, profile, queries) = fixture(200, SEED ^ 4);
    let mut rng = StdRng::seed_from_u64(SEED ^ 5);
    let params = AdversarialParams::new(0.5).unwrap().with_options(opts(6));
    let index = AdversarialIndex::build(&ds, &profile, params, &mut rng);
    let reloaded = assert_round_trip(&index, &queries, "AdversarialIndex");
    // The analytical surface survives too (scheme calibration persisted).
    for q in queries.iter().filter(|q| !q.dims().is_empty()).take(5) {
        assert_eq!(reloaded.predicted_rho(q), index.predicted_rho(q));
    }
}

#[test]
fn chosen_path_index_round_trips() {
    let (ds, profile, queries) = fixture(200, SEED ^ 6);
    let mut rng = StdRng::seed_from_u64(SEED ^ 7);
    let params = ChosenPathParams::new(0.5, 0.1)
        .unwrap()
        .with_options(opts(6));
    let index = ChosenPathIndex::build(&ds, &profile, params, &mut rng);
    let reloaded = assert_round_trip(&index, &queries, "ChosenPathIndex");
    assert_eq!(reloaded.k(), index.k());
    assert_eq!(reloaded.predicted_rho(), index.predicted_rho());
}

#[test]
fn minhash_round_trips() {
    let (ds, profile, queries) = fixture(200, SEED ^ 8);
    let mut rng = StdRng::seed_from_u64(SEED ^ 9);
    let _ = profile;
    let index = MinHashLsh::build(&ds, MinHashParams::new(0.6, 0.1).unwrap(), &mut rng);
    assert_round_trip(&index, &queries, "MinHashLsh");
}

#[test]
fn mutated_index_round_trips() {
    // Tombstones, a delta segment, and the compaction watermark must all
    // survive: mutate heavily, save, reload, and compare — then keep
    // mutating the reloaded copy and compare again (the log keeps rolling
    // after a restart).
    let (ds, profile, queries) = fixture(220, SEED ^ 10);
    let mut rng = StdRng::seed_from_u64(SEED ^ 11);
    let scheme = CorrelatedScheme::new(ALPHA, 200, &profile);
    let mut index = LsfIndex::build(
        ds.vectors()[..200].to_vec(),
        profile.clone(),
        scheme,
        ALPHA / 1.3,
        opts(6),
        &mut rng,
    );
    let sampler = VectorSampler::new(&profile);
    for i in 0..40 {
        if i % 3 == 0 {
            index.remove(i).unwrap();
        } else {
            index.insert(sampler.sample(&mut rng)).unwrap();
        }
    }
    let reloaded = assert_round_trip(&index, &queries, "mutated LsfIndex");

    let mut original = index;
    let mut reloaded = reloaded;
    let fresh: Vec<SparseVec> = (0..10).map(|_| sampler.sample(&mut rng)).collect();
    for (i, v) in fresh.into_iter().enumerate() {
        assert_eq!(
            original.insert(v.clone()).unwrap(),
            reloaded.insert(v).unwrap(),
            "post-reload insert {i} assigned different ids"
        );
        // Remove a live slot (100..) and an already-dead one (0, 3, ...):
        // both the tombstone write and the no-op must agree after a reload.
        assert_eq!(
            original.remove(100 + i).unwrap(),
            reloaded.remove(100 + i).unwrap(),
            "post-reload remove {i} diverged"
        );
        assert_eq!(
            original.remove(3 * i).unwrap(),
            reloaded.remove(3 * i).unwrap(),
            "post-reload dead remove {i} diverged"
        );
    }
    assert_same_answers(&original, &reloaded, &queries, "mutated-after-reload");
}

#[test]
fn mutated_then_compacted_index_round_trips_as_format_v2() {
    // Compaction re-encodes the merged segment through the compressed
    // postings encoder — the second of the two encode sites. A compacted
    // index must round-trip through a format-v2 file (compressed arenas
    // persisted verbatim) with every surface intact.
    let (ds, profile, queries) = fixture(220, SEED ^ 20);
    let mut rng = StdRng::seed_from_u64(SEED ^ 21);
    let scheme = CorrelatedScheme::new(ALPHA, 200, &profile);
    let mut index = LsfIndex::build(
        ds.vectors()[..200].to_vec(),
        profile.clone(),
        scheme,
        ALPHA / 1.3,
        opts(6),
        &mut rng,
    );
    let sampler = VectorSampler::new(&profile);
    for i in 0..30 {
        if i % 4 == 0 {
            index.remove(i).unwrap();
        } else {
            index.insert(sampler.sample(&mut rng)).unwrap();
        }
    }
    index.compact();
    assert_eq!(index.pending_mutations(), 0);

    let path = scratch("compacted_v2");
    index.save(&path).unwrap();
    // The file header carries the active write version — 2, unless the CI
    // rollback drill forced v1 via SKEWSEARCH_FORCE_V1.
    let bytes = std::fs::read(&path).unwrap();
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    assert_eq!(
        version,
        skewsearch::core::persist::effective_write_version(),
        "compacted index saves at the active write version"
    );
    let reloaded = LsfIndex::<CorrelatedScheme>::load(&path).unwrap();
    let _ = std::fs::remove_file(&path);
    assert_same_answers(&index, &reloaded, &queries, "compacted v2");
    // The capacity-based accounting survives the round trip exactly: both
    // sides hold shrunk-to-fit arrays rebuilt from the same postings.
    assert!(index.memory_bytes() > 0);
    assert_eq!(
        reloaded.memory_stats().posting_bytes,
        index.memory_stats().posting_bytes,
        "posting accounting diverged across the round trip"
    );
}

#[test]
fn legacy_v1_files_still_load() {
    // The v1 fallback: a file written in the uncompressed bucket-map layout
    // (version 1 in the header) must load into the compressed substrate and
    // answer byte-identically. The file is handcrafted through the public
    // versioned writer — no environment toggle, so this stays race-free
    // under parallel test threads (CI exercises `SKEWSEARCH_FORCE_V1=1`
    // cross-process instead).
    use skewsearch::core::persist::{kind, write_container_versioned, Writer};
    let (ds, profile, queries) = fixture(200, SEED ^ 22);
    let mut rng = StdRng::seed_from_u64(SEED ^ 23);
    let scheme = CorrelatedScheme::new(ALPHA, ds.n(), &profile);
    let mut index = LsfIndex::build(
        ds.vectors().to_vec(),
        profile.clone(),
        scheme,
        ALPHA / 1.3,
        opts(5),
        &mut rng,
    );
    // A delta segment rides along: v1 encodes it the same way.
    let sampler = VectorSampler::new(&profile);
    for _ in 0..8 {
        index.insert(sampler.sample(&mut rng)).unwrap();
    }
    index.remove(5).unwrap();

    let path = scratch("legacy_v1");
    let mut w = Writer::new();
    index.write_payload(&mut w, 1);
    write_container_versioned(&path, kind::LSF, &w.into_payload(), 1).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    assert_eq!(version, 1, "handcrafted file carries the v1 header");

    let reloaded = LsfIndex::<CorrelatedScheme>::load(&path).unwrap();
    let _ = std::fs::remove_file(&path);
    assert_same_answers(&index, &reloaded, &queries, "legacy v1");

    // And a v1 file round-trips onward at the active write version
    // (normally an upgrade to v2): saving the reloaded index re-encodes the
    // layout without changing an answer.
    let path2 = scratch("legacy_v1_upgraded");
    reloaded.save(&path2).unwrap();
    let bytes = std::fs::read(&path2).unwrap();
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    assert_eq!(
        version,
        skewsearch::core::persist::effective_write_version(),
        "re-save writes the active version"
    );
    let upgraded = LsfIndex::<CorrelatedScheme>::load(&path2).unwrap();
    let _ = std::fs::remove_file(&path2);
    assert_same_answers(&reloaded, &upgraded, &queries, "v1→v2 upgrade");
}

#[test]
fn sharded_deployments_round_trip() {
    let (ds, profile, queries) = fixture(250, SEED ^ 12);
    let mut rng = StdRng::seed_from_u64(SEED ^ 13);
    let params = CorrelatedParams::new(ALPHA).unwrap().with_options(opts(6));
    let index = CorrelatedIndex::build(&ds, &profile, params, &mut rng);
    for strategy in STRATEGIES {
        for shards in [1usize, 3, 8] {
            let sharded = ShardedIndex::build(&index, strategy, shards);
            let dir = scratch("sharded");
            sharded
                .save(&dir)
                .unwrap_or_else(|e| panic!("{strategy:?}/{shards} save: {e}"));
            let reloaded = ShardedIndex::<CorrelatedIndex>::load(&dir)
                .unwrap_or_else(|e| panic!("{strategy:?}/{shards} load: {e}"));
            let _ = std::fs::remove_dir_all(&dir);
            assert_eq!(reloaded.strategy(), strategy);
            assert_eq!(reloaded.shard_count(), sharded.shard_count());
            assert_eq!(reloaded.shard_lens(), sharded.shard_lens());
            assert_same_answers(
                &sharded,
                &reloaded,
                &queries,
                &format!("ShardedIndex {strategy:?} shards={shards}"),
            );
        }
    }
}

#[test]
fn sharded_minhash_round_trips() {
    // The manifest must also work over an index with its own section type
    // (MinHash, kind 5) — exercises the id-map path since MinHash shards
    // only by dataset.
    let (ds, _profile, queries) = fixture(200, SEED ^ 14);
    let mut rng = StdRng::seed_from_u64(SEED ^ 15);
    let index = MinHashLsh::build(&ds, MinHashParams::new(0.6, 0.1).unwrap(), &mut rng);
    let sharded = ShardedIndex::build(&index, ShardStrategy::ByDataset, 3);
    let dir = scratch("sharded_mh");
    sharded.save(&dir).unwrap();
    let reloaded = ShardedIndex::<MinHashLsh>::load(&dir).unwrap();
    let _ = std::fs::remove_dir_all(&dir);
    assert_same_answers(&sharded, &reloaded, &queries, "ShardedIndex<MinHashLsh>");
}

// ---------------------------------------------------------------------------
// Failure contract: corruption is a typed error, never a panic.
// ---------------------------------------------------------------------------

fn saved_correlated() -> (PathBuf, CorrelatedIndex) {
    let (ds, profile, _) = fixture(120, SEED ^ 16);
    let mut rng = StdRng::seed_from_u64(SEED ^ 17);
    let params = CorrelatedParams::new(ALPHA).unwrap().with_options(opts(4));
    let index = CorrelatedIndex::build(&ds, &profile, params, &mut rng);
    let path = scratch("corrupt");
    index.save(&path).unwrap();
    (path, index)
}

#[test]
fn missing_file_is_io_error() {
    let path = scratch("missing");
    assert!(matches!(
        CorrelatedIndex::load(&path),
        Err(PersistError::Io(_))
    ));
}

#[test]
fn garbage_magic_is_rejected() {
    let path = scratch("magic");
    std::fs::write(&path, b"definitely not an index file, but long enough").unwrap();
    assert!(matches!(
        CorrelatedIndex::load(&path),
        Err(PersistError::BadMagic)
    ));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn future_version_is_rejected() {
    let (path, _index) = saved_correlated();
    let mut bytes = std::fs::read(&path).unwrap();
    bytes[8] = 99; // format-version word (LE) right after the 8-byte magic
    std::fs::write(&path, &bytes).unwrap();
    assert!(matches!(
        CorrelatedIndex::load(&path),
        Err(PersistError::UnsupportedVersion(99))
    ));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn wrong_container_kind_is_rejected() {
    let (path, _index) = saved_correlated();
    assert!(matches!(
        AdversarialIndex::load(&path),
        Err(PersistError::WrongKind { .. })
    ));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn every_truncation_point_is_rejected_without_panicking() {
    let (path, _index) = saved_correlated();
    let bytes = std::fs::read(&path).unwrap();
    // Exhaustive near the header, sampled through the payload.
    let cuts: Vec<usize> = (0..64.min(bytes.len()))
        .chain((64..bytes.len()).step_by(997))
        .collect();
    for cut in cuts {
        std::fs::write(&path, &bytes[..cut]).unwrap();
        assert!(
            CorrelatedIndex::load(&path).is_err(),
            "truncation at {cut}/{} bytes must fail",
            bytes.len()
        );
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn flipped_payload_bytes_fail_the_checksum() {
    let (path, _index) = saved_correlated();
    let bytes = std::fs::read(&path).unwrap();
    // Flip a byte at several payload offsets; each must be caught by the
    // FNV checksum before any structural decoding happens.
    for offset in [32usize, 100, bytes.len() / 2, bytes.len() - 1] {
        let mut corrupt = bytes.clone();
        corrupt[offset] ^= 0x40;
        std::fs::write(&path, &corrupt).unwrap();
        assert!(matches!(
            CorrelatedIndex::load(&path),
            Err(PersistError::ChecksumMismatch)
        ));
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn manifest_missing_shard_file_is_io_error() {
    let (ds, profile, _) = fixture(120, SEED ^ 18);
    let mut rng = StdRng::seed_from_u64(SEED ^ 19);
    let params = CorrelatedParams::new(ALPHA).unwrap().with_options(opts(4));
    let index = CorrelatedIndex::build(&ds, &profile, params, &mut rng);
    let sharded = ShardedIndex::build(&index, ShardStrategy::ByDataset, 2);
    let dir = scratch("manifest");
    sharded.save(&dir).unwrap();
    std::fs::remove_file(dir.join("shard-0001.skx")).unwrap();
    assert!(matches!(
        ShardedIndex::<CorrelatedIndex>::load(&dir),
        Err(PersistError::Io(_))
    ));
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Property-based round trip.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn prop_correlated_round_trip(
        seed in 0u64..1000,
        n in 40usize..160,
        alpha in 0.55f64..0.9,
    ) {
        let profile = BernoulliProfile::blocks(&[(40, 0.25), (400, 0.02)]).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let ds = Dataset::generate(&profile, n, &mut rng);
        let queries: Vec<SparseVec> = (0..8)
            .map(|t| correlated_query(ds.vector(t * 7 % n), &profile, alpha, &mut rng))
            .collect();
        let params = CorrelatedParams::new(alpha).unwrap().with_options(opts(4));
        let index = CorrelatedIndex::build(&ds, &profile, params, &mut rng);
        let path = scratch("prop");
        index.save(&path).unwrap();
        let reloaded = CorrelatedIndex::load(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        for q in &queries {
            prop_assert_eq!(reloaded.search_all(q), index.search_all(q));
            prop_assert_eq!(reloaded.search(q), index.search(q));
        }
    }
}
