//! Pipeline semantics: for every index type, the split query path —
//! `plan_query` (stage 1: enumerate + intern) followed by `probe_plan` /
//! `probe_plan_tagged` / `probe_plan_first_tagged` (stages 2+3: bucket
//! probing + verification) — must answer **byte-identically** to the legacy
//! fused `search_all` / `search_all_tagged` / `search_first_tagged` path,
//! tags included.
//!
//! Deterministic tests pin the 5 index types; a proptest block randomizes
//! dataset, correlation target, and repetition count. Degenerate cases ride
//! along everywhere: the empty query (a plan with all-empty key lists), the
//! *unplanned* plan (fused fallback), and plan reuse (probing must not
//! consume the plan). A final test drives plans through the sharded
//! broadcast at the worker counts of `SKEWSEARCH_TEST_THREADS` (CI sets it
//! to `nproc` on multicore hosts — see `.github/workflows/ci.yml`).

use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};
use skewsearch::baselines::{ChosenPathIndex, ChosenPathParams, MinHashLsh, MinHashParams};
use skewsearch::core::{
    AdversarialIndex, AdversarialParams, CorrelatedIndex, CorrelatedParams, CorrelatedScheme,
    IndexOptions, LsfIndex, QueryPlan, Repetitions, SetSimilaritySearch, ShardStrategy,
    ShardedIndex,
};
use skewsearch::datagen::{correlated_query, BernoulliProfile, Dataset};
use skewsearch::sets::SparseVec;

mod common;
use common::thread_counts;

const SEED: u64 = 0x91A4;
const ALPHA: f64 = 0.7;

fn fixture(n: usize, seed: u64) -> (Dataset, BernoulliProfile, Vec<SparseVec>) {
    let profile = BernoulliProfile::blocks(&[(60, 0.2), (900, 0.01)]).unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    let ds = Dataset::generate(&profile, n, &mut rng);
    let mut queries: Vec<SparseVec> = (0..20)
        .map(|t| correlated_query(ds.vector(t * 13 % n.max(1)), &profile, ALPHA, &mut rng))
        .collect();
    queries.push(SparseVec::empty()); // degenerate: empty query → empty plan
    (ds, profile, queries)
}

fn opts(reps: usize) -> IndexOptions {
    IndexOptions {
        repetitions: Repetitions::Fixed(reps),
        ..IndexOptions::default()
    }
}

/// The pipeline contract, entry point by entry point: planned probes, fused
/// searches, and the unplanned fallback all agree byte-for-byte.
fn assert_plan_equivalent<I: SetSimilaritySearch>(index: &I, queries: &[SparseVec], label: &str) {
    for (i, q) in queries.iter().enumerate() {
        let ctx = format!("{label} q={i}");
        let plan = index.plan_query(q);
        assert_eq!(plan.query(), q, "{ctx}");
        assert_eq!(index.probe_plan(&plan), index.search_all(q), "{ctx}");
        assert_eq!(
            index.probe_plan_tagged(&plan),
            index.search_all_tagged(q),
            "{ctx}"
        );
        assert_eq!(
            index.probe_plan_first_tagged(&plan),
            index.search_first_tagged(q),
            "{ctx}"
        );
        // A plan is not consumed by probing: the second probe must agree.
        assert_eq!(index.probe_plan(&plan), index.probe_plan(&plan), "{ctx}");
        // Unplanned plans degrade to the fused path, never to a wrong answer.
        let unplanned = QueryPlan::unplanned(q.clone());
        assert!(!unplanned.is_planned(), "{ctx}");
        assert_eq!(
            index.probe_plan_tagged(&unplanned),
            index.search_all_tagged(q),
            "{ctx} unplanned"
        );
    }
    // The empty query rides last in every fixture: its plan carries passes
    // but zero keys, and probing it finds nothing.
    let empty_plan = index.plan_query(queries.last().expect("fixture has queries"));
    assert_eq!(
        empty_plan.key_count(),
        0,
        "{label} empty query plans 0 keys"
    );
    assert!(index.probe_plan(&empty_plan).is_empty(), "{label}");
}

#[test]
fn lsf_index_plan_equivalence() {
    let (ds, profile, queries) = fixture(250, SEED);
    let mut rng = StdRng::seed_from_u64(SEED ^ 1);
    let scheme = CorrelatedScheme::new(ALPHA, ds.n(), &profile);
    let index = LsfIndex::build(
        ds.vectors().to_vec(),
        profile.clone(),
        scheme,
        ALPHA / 1.3,
        opts(6),
        &mut rng,
    );
    assert_plan_equivalent(&index, &queries, "LsfIndex");
}

#[test]
fn correlated_index_plan_equivalence() {
    let (ds, profile, queries) = fixture(250, SEED);
    let mut rng = StdRng::seed_from_u64(SEED ^ 2);
    let params = CorrelatedParams::new(ALPHA).unwrap().with_options(opts(6));
    let index = CorrelatedIndex::build(&ds, &profile, params, &mut rng);
    assert_plan_equivalent(&index, &queries, "CorrelatedIndex");
}

#[test]
fn adversarial_index_plan_equivalence() {
    let (ds, profile, queries) = fixture(250, SEED);
    let mut rng = StdRng::seed_from_u64(SEED ^ 3);
    let params = AdversarialParams::new(ALPHA / 1.3)
        .unwrap()
        .with_options(opts(6));
    let index = AdversarialIndex::build(&ds, &profile, params, &mut rng);
    assert_plan_equivalent(&index, &queries, "AdversarialIndex");
}

#[test]
fn chosen_path_index_plan_equivalence() {
    let (ds, profile, queries) = fixture(250, SEED);
    let mut rng = StdRng::seed_from_u64(SEED ^ 4);
    let params = ChosenPathParams::for_correlated_model(&profile, ALPHA, 1.0 / 1.3)
        .unwrap()
        .with_options(opts(6));
    let index = ChosenPathIndex::build(&ds, &profile, params, &mut rng);
    assert_plan_equivalent(&index, &queries, "ChosenPathIndex");
}

#[test]
fn minhash_plan_equivalence() {
    let (ds, _, queries) = fixture(250, SEED);
    let mut rng = StdRng::seed_from_u64(SEED ^ 5);
    let params = MinHashParams::new(0.6, 0.3).unwrap();
    let index = MinHashLsh::build(&ds, params, &mut rng);
    assert_plan_equivalent(&index, &queries, "MinHashLsh");
}

#[test]
fn empty_index_plans_and_probes_to_nothing() {
    let profile = BernoulliProfile::uniform(50, 0.2).unwrap();
    let mut rng = StdRng::seed_from_u64(SEED ^ 6);
    let scheme = CorrelatedScheme::new(0.5, 2, &profile);
    let index: LsfIndex<CorrelatedScheme> = LsfIndex::build(
        vec![],
        profile,
        scheme,
        0.5,
        IndexOptions::default(),
        &mut rng,
    );
    let q = SparseVec::from_unsorted(vec![1, 2, 3]);
    let plan = index.plan_query(&q);
    assert_eq!(plan.pass_count(), index.repetition_count());
    assert!(index.probe_plan(&plan).is_empty());
    assert!(index.probe_plan_first_tagged(&plan).is_none());
}

#[test]
fn broadcast_probes_match_at_configured_worker_counts() {
    // The sharded fan-out consumes one plan from many workers; results must
    // be identical at every worker count (including SKEWSEARCH_TEST_THREADS,
    // which CI pins to the real core count).
    let (ds, profile, queries) = fixture(200, SEED ^ 7);
    let mut rng = StdRng::seed_from_u64(SEED ^ 7);
    let params = CorrelatedParams::new(ALPHA).unwrap().with_options(opts(5));
    let index = CorrelatedIndex::build(&ds, &profile, params, &mut rng);
    for strategy in [ShardStrategy::ByRepetition, ShardStrategy::ByDataset] {
        for threads in thread_counts() {
            let sharded = ShardedIndex::build(&index, strategy, 4)
                .with_fanout_threads(threads)
                .with_query_threads(threads);
            for (i, q) in queries.iter().enumerate() {
                assert_eq!(
                    sharded.search_all_tagged(q),
                    index.search_all_tagged(q),
                    "{strategy:?} threads={threads} q={i}"
                );
            }
            assert_eq!(
                sharded.search_batch(&queries),
                queries
                    .iter()
                    .map(|q| index.search_all(q))
                    .collect::<Vec<_>>(),
                "{strategy:?} threads={threads}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Randomized sweep: all five index types, random dataset sizes and
    /// repetition counts — the planned path must always reproduce the fused
    /// path byte-for-byte.
    #[test]
    fn planned_equals_fused_for_all_index_types(
        seed in 0u64..1_000_000,
        reps in 2usize..7,
        n in 40usize..120,
    ) {
        let (ds, profile, queries) = fixture(n, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xBEEF);
        // First nine correlated queries plus the trailing empty query.
        let queries: Vec<SparseVec> = queries[..9]
            .iter()
            .chain(queries.last())
            .cloned()
            .collect();
        let queries = &queries[..];

        let scheme = CorrelatedScheme::new(ALPHA, ds.n(), &profile);
        let lsf = LsfIndex::build(
            ds.vectors().to_vec(),
            profile.clone(),
            scheme,
            ALPHA / 1.3,
            opts(reps),
            &mut rng,
        );
        assert_plan_equivalent(&lsf, queries, "prop LsfIndex");

        let correlated = CorrelatedIndex::build(
            &ds,
            &profile,
            CorrelatedParams::new(ALPHA).unwrap().with_options(opts(reps)),
            &mut rng,
        );
        assert_plan_equivalent(&correlated, queries, "prop CorrelatedIndex");

        let adversarial = AdversarialIndex::build(
            &ds,
            &profile,
            AdversarialParams::new(ALPHA / 1.3).unwrap().with_options(opts(reps)),
            &mut rng,
        );
        assert_plan_equivalent(&adversarial, queries, "prop AdversarialIndex");

        let chosen_path = ChosenPathIndex::build(
            &ds,
            &profile,
            ChosenPathParams::for_correlated_model(&profile, ALPHA, 1.0 / 1.3)
                .unwrap()
                .with_options(opts(reps)),
            &mut rng,
        );
        assert_plan_equivalent(&chosen_path, queries, "prop ChosenPathIndex");

        let minhash = MinHashLsh::build(&ds, MinHashParams::new(0.6, 0.3).unwrap(), &mut rng);
        assert_plan_equivalent(&minhash, queries, "prop MinHashLsh");
    }
}
