//! Round-trip and corruption contracts for the compressed postings codec.
//!
//! The codec (delta + LEB128 varint bucket arenas, `skewsearch::core::postings`)
//! sits under every base segment and every format-v2 file, so its failure
//! contract is load-bearing: **any** byte-level corruption must surface as a
//! typed [`PostingsError`] from `from_parts` — never a panic, never a silently
//! wrong bucket. The proptest block randomizes bucket shapes; the unit block
//! pins each corruption class by hand-crafting arenas at the byte level.

use proptest::prelude::*;
use skewsearch::core::{CompressedPostings, PostingsEncoder, PostingsError};

/// Encode a key-sorted map of buckets (ids strictly ascending within each).
fn encode(buckets: &[(u64, Vec<u32>)]) -> CompressedPostings {
    let mut enc = PostingsEncoder::new();
    for (key, ids) in buckets {
        for &id in ids {
            enc.push(*key, id);
        }
    }
    enc.finish()
}

/// Decode every bucket back out through the streaming cursor.
fn decode(p: &CompressedPostings) -> Vec<(u64, Vec<u32>)> {
    p.iter()
        .map(|(key, cursor)| (key, cursor.collect()))
        .collect()
}

/// A strategy producing well-formed bucket sets: sorted unique keys, each
/// with a strictly ascending non-empty id list. Raw `(key, ids)` pairs are
/// canonicalized through a `BTreeMap`/`BTreeSet` (dedup + sort), so any
/// random draw becomes a valid encoder input.
fn bucket_sets() -> impl Strategy<Value = Vec<(u64, Vec<u32>)>> {
    prop::collection::vec(
        (any::<u64>(), prop::collection::vec(any::<u32>(), 1..24)),
        0..24,
    )
    .prop_map(|raw| {
        let mut canonical: std::collections::BTreeMap<u64, std::collections::BTreeSet<u32>> =
            std::collections::BTreeMap::new();
        for (key, ids) in raw {
            canonical.entry(key).or_default().extend(ids);
        }
        canonical
            .into_iter()
            .map(|(k, ids)| (k, ids.into_iter().collect::<Vec<u32>>()))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// encode → decode is the identity on every well-formed bucket set,
    /// and the summary statistics match the input.
    #[test]
    fn round_trip_is_identity(buckets in bucket_sets()) {
        let p = encode(&buckets);
        prop_assert_eq!(decode(&p), buckets.clone());
        prop_assert_eq!(p.bucket_count(), buckets.len());
        let postings: usize = buckets.iter().map(|(_, ids)| ids.len()).sum();
        prop_assert_eq!(p.posting_count(), postings);
        let max = buckets.iter().map(|(_, ids)| ids.len()).max().unwrap_or(0);
        prop_assert_eq!(p.max_bucket_len(), max);
    }

    /// `get` agrees with `iter` on every key, and misses between keys.
    #[test]
    fn get_matches_iter(buckets in bucket_sets(), probe in any::<u64>()) {
        let p = encode(&buckets);
        for (key, ids) in &buckets {
            let got: Vec<u32> = p.get(*key).expect("present key").collect();
            prop_assert_eq!(&got, ids);
        }
        let expect = buckets.iter().find(|(k, _)| *k == probe).map(|(_, ids)| ids.clone());
        let got = p.get(probe).map(|c| c.collect::<Vec<u32>>());
        prop_assert_eq!(got, expect);
    }

    /// Re-validating an encoder's own output through `from_parts` always
    /// succeeds: the strict reader accepts everything the writer emits.
    #[test]
    fn from_parts_accepts_encoder_output(buckets in bucket_sets()) {
        let p = encode(&buckets);
        let n_slots = buckets
            .iter()
            .flat_map(|(_, ids)| ids.iter())
            .map(|&id| id as usize + 1)
            .max()
            .unwrap_or(0);
        let re = CompressedPostings::from_parts(
            p.keys().to_vec(),
            p.offsets().to_vec(),
            p.arena().to_vec(),
            n_slots,
            0,
        );
        prop_assert_eq!(re, Ok(p));
    }

    /// Truncating the arena at ANY byte boundary never panics: either the
    /// damage is caught as a typed error (mid-varint cut, collapsed offset
    /// ranges), or — when the cut lands exactly on a varint boundary inside
    /// the final bucket — the result decodes to strictly fewer postings.
    /// Silent full-content acceptance is impossible.
    #[test]
    fn truncated_arena_is_rejected_or_loses_postings(
        buckets in bucket_sets(),
        cut_raw in any::<usize>(),
    ) {
        let p = encode(&buckets);
        prop_assume!(!p.arena().is_empty());
        let cut = cut_raw % p.arena().len();
        let mut offsets = p.offsets().to_vec();
        // Clamp the offset table to the shortened arena so the table itself
        // stays internally consistent — the damage is inside the bytes.
        for o in &mut offsets {
            *o = (*o).min(cut as u64);
        }
        let arena = p.arena()[..cut].to_vec();
        let re = CompressedPostings::from_parts(
            p.keys().to_vec(),
            offsets,
            arena,
            u32::MAX as usize,
            0,
        );
        if let Ok(q) = re {
            prop_assert!(
                q.posting_count() < p.posting_count(),
                "truncation at byte {} accepted without losing postings",
                cut
            );
        }
    }

    /// Flipping a single arena byte either still decodes (to possibly
    /// different ids) or fails with a typed error — it never panics. This is
    /// the blanket no-panic contract over random single-byte corruption.
    #[test]
    fn flipped_arena_byte_never_panics(
        buckets in bucket_sets(),
        at_raw in any::<usize>(),
        xor in 1u8..=255,
    ) {
        let p = encode(&buckets);
        prop_assume!(!p.arena().is_empty());
        let at = at_raw % p.arena().len();
        let mut arena = p.arena().to_vec();
        arena[at] ^= xor;
        let _ = CompressedPostings::from_parts(
            p.keys().to_vec(),
            p.offsets().to_vec(),
            arena,
            u32::MAX as usize,
            0,
        );
    }
}

// ---------------------------------------------------------------------------
// Hand-crafted corruption classes, byte by byte.
// ---------------------------------------------------------------------------

/// LEB128-encode `v` into `out` (test-local writer, mirrors the codec).
fn varint(out: &mut Vec<u8>, mut v: u32) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}

/// One bucket under key 7: first id absolute, then gaps.
fn one_bucket(first: u32, gaps: &[u32]) -> (Vec<u64>, Vec<u64>, Vec<u8>) {
    let mut arena = Vec::new();
    varint(&mut arena, first);
    for &g in gaps {
        varint(&mut arena, g);
    }
    (vec![7], vec![0, arena.len() as u64], arena)
}

#[test]
fn zero_gap_is_non_monotone() {
    // ids 5 then gap 0 would repeat 5 — duplicates are never valid.
    let (keys, offsets, arena) = one_bucket(5, &[0]);
    let err = CompressedPostings::from_parts(keys, offsets, arena, 100, 0).unwrap_err();
    assert_eq!(err, PostingsError::NonMonotone);
}

#[test]
fn truncated_final_varint_is_typed() {
    // A continuation bit with no following byte: the varint never terminates.
    let keys = vec![7u64];
    let arena = vec![0x85u8]; // "more bytes follow" … but none do
    let offsets = vec![0, arena.len() as u64];
    let err = CompressedPostings::from_parts(keys, offsets, arena, 100, 0).unwrap_err();
    assert_eq!(err, PostingsError::Truncated);
}

#[test]
fn oversized_varint_is_overflow() {
    // Six continuation bytes: a u32 varint is at most five bytes.
    let keys = vec![7u64];
    let arena = vec![0x80, 0x80, 0x80, 0x80, 0x80, 0x01];
    let offsets = vec![0, arena.len() as u64];
    let err = CompressedPostings::from_parts(keys, offsets, arena, 100, 0).unwrap_err();
    assert_eq!(err, PostingsError::Overflow);
}

#[test]
fn fifth_byte_high_bits_are_overflow() {
    // Five bytes whose fifth carries bits above bit 31 of the value.
    let keys = vec![7u64];
    let arena = vec![0x80, 0x80, 0x80, 0x80, 0x10];
    let offsets = vec![0, arena.len() as u64];
    let err = CompressedPostings::from_parts(keys, offsets, arena, 100, 0).unwrap_err();
    assert_eq!(err, PostingsError::Overflow);
}

#[test]
fn gap_sum_past_u32_max_is_overflow() {
    // First id near the top of the range plus a huge gap wraps u32.
    let (keys, offsets, arena) = one_bucket(u32::MAX - 1, &[3]);
    let err =
        CompressedPostings::from_parts(keys, offsets, arena, u32::MAX as usize, 0).unwrap_err();
    assert_eq!(err, PostingsError::Overflow);
}

#[test]
fn id_at_or_past_n_slots_is_out_of_range() {
    // id 100 with only 100 slots (valid ids are 0..100).
    let (keys, offsets, arena) = one_bucket(100, &[]);
    let err = CompressedPostings::from_parts(keys, offsets, arena, 100, 0).unwrap_err();
    assert_eq!(err, PostingsError::IdOutOfRange);
}

#[test]
fn unsorted_keys_are_rejected() {
    let mut enc = PostingsEncoder::new();
    enc.push(7, 1);
    let p = enc.finish();
    // Duplicate the single key: 7, 7 is not strictly ascending.
    let keys = vec![7u64, 7u64];
    let mut offsets = p.offsets().to_vec();
    offsets.push(*offsets.last().unwrap()); // would also trip OffsetTable — keys are checked first
    let err =
        CompressedPostings::from_parts(keys, offsets, p.arena().to_vec(), 100, 0).unwrap_err();
    assert_eq!(err, PostingsError::KeyOrder);
}

#[test]
fn malformed_offset_tables_are_rejected() {
    let (keys, _, arena) = one_bucket(5, &[2]);
    let n = arena.len() as u64;
    // Wrong length (keys.len()+1 entries required).
    let err =
        CompressedPostings::from_parts(keys.clone(), vec![0], arena.clone(), 100, 0).unwrap_err();
    assert_eq!(err, PostingsError::OffsetTable);
    // First entry not zero.
    let err = CompressedPostings::from_parts(keys.clone(), vec![1, n], arena.clone(), 100, 0)
        .unwrap_err();
    assert_eq!(err, PostingsError::OffsetTable);
    // Last entry disagrees with the arena length.
    let err = CompressedPostings::from_parts(keys.clone(), vec![0, n + 1], arena.clone(), 100, 0)
        .unwrap_err();
    assert_eq!(err, PostingsError::OffsetTable);
    // Non-ascending interior (empty bucket blocks are impossible: every
    // stored bucket holds at least its absolute first id).
    let err = CompressedPostings::from_parts(vec![7, 9], vec![0, n, n], arena, 100, 0).unwrap_err();
    assert_eq!(err, PostingsError::OffsetTable);
}

#[test]
fn min_id_floor_is_enforced() {
    // Delta-segment reads pass `min_id = base_len`: an id below the floor
    // (e.g. written by a corrupted file claiming a base id lives in the
    // delta) is rejected.
    let (keys, offsets, arena) = one_bucket(3, &[]);
    let err = CompressedPostings::from_parts(keys, offsets, arena, 100, 10).unwrap_err();
    assert_eq!(err, PostingsError::IdOutOfRange);
}

#[test]
fn errors_display_without_panicking() {
    // Each variant renders a human-readable message (used by persist's
    // Malformed mapping and by anyone logging a failed load).
    for err in [
        PostingsError::Truncated,
        PostingsError::Overflow,
        PostingsError::NonMonotone,
        PostingsError::KeyOrder,
        PostingsError::OffsetTable,
        PostingsError::IdOutOfRange,
    ] {
        assert!(!err.to_string().is_empty());
    }
}

#[test]
fn empty_postings_are_well_formed() {
    let p = PostingsEncoder::new().finish();
    assert!(p.is_empty());
    assert_eq!(p.bucket_count(), 0);
    assert_eq!(p.posting_count(), 0);
    assert_eq!(p.max_bucket_len(), 0);
    assert_eq!(decode(&p), Vec::<(u64, Vec<u32>)>::new());
    assert!(p.get(0).is_none());
    let re = CompressedPostings::from_parts(Vec::new(), vec![0], Vec::new(), 0, 0);
    assert_eq!(re, Ok(p));
}
