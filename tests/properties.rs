//! Cross-crate property-based tests (proptest): randomized inputs exercising
//! the algebraic invariants that the unit tests only probe pointwise.

use proptest::prelude::*;
use skewsearch::datagen::BernoulliProfile;
use skewsearch::rho;
use skewsearch::sets::{similarity, SparseVec};

fn arb_sparsevec(max_dim: u32, max_len: usize) -> impl Strategy<Value = SparseVec> {
    prop::collection::vec(0..max_dim, 0..max_len).prop_map(SparseVec::from_unsorted)
}

fn arb_probability() -> impl Strategy<Value = f64> {
    (0.001f64..0.5).prop_map(|p| p)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn intersection_matches_naive(a in arb_sparsevec(500, 80), b in arb_sparsevec(500, 80)) {
        let naive = a.iter().filter(|&i| b.contains(i)).count();
        prop_assert_eq!(a.intersection_len(&b), naive);
        prop_assert_eq!(b.intersection_len(&a), naive);
        prop_assert_eq!(a.union_len(&b), a.weight() + b.weight() - naive);
    }

    #[test]
    fn gallop_and_merge_agree(small in arb_sparsevec(100_000, 12), big in arb_sparsevec(100_000, 3000)) {
        // Sizes straddle GALLOP_RATIO so both code paths appear across cases.
        let naive = small.iter().filter(|&i| big.contains(i)).count();
        prop_assert_eq!(small.intersection_len(&big), naive);
    }

    #[test]
    fn set_algebra_laws(a in arb_sparsevec(300, 60), b in arb_sparsevec(300, 60)) {
        let i = a.intersection(&b);
        let u = a.union(&b);
        let da = a.difference(&b);
        prop_assert_eq!(i.weight() + u.weight(), a.weight() + b.weight());
        prop_assert_eq!(da.weight() + i.weight(), a.weight());
        for x in i.iter() {
            prop_assert!(a.contains(x) && b.contains(x));
        }
        for x in da.iter() {
            prop_assert!(a.contains(x) && !b.contains(x));
        }
    }

    #[test]
    fn similarity_measures_bounded_and_symmetric(
        a in arb_sparsevec(200, 50),
        b in arb_sparsevec(200, 50),
    ) {
        for f in [
            similarity::braun_blanquet,
            similarity::jaccard,
            similarity::overlap,
            similarity::dice,
            similarity::cosine,
        ] {
            let s = f(&a, &b);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&s));
            prop_assert!((s - f(&b, &a)).abs() < 1e-12);
        }
        // Ordering law: jaccard <= braun_blanquet (b/(2-b) relation) and
        // braun_blanquet <= overlap.
        prop_assert!(similarity::jaccard(&a, &b) <= similarity::braun_blanquet(&a, &b) + 1e-12);
        prop_assert!(similarity::braun_blanquet(&a, &b) <= similarity::overlap(&a, &b) + 1e-12);
    }

    #[test]
    fn rho_correlated_residual_vanishes_and_lies_in_unit_interval(
        pa in arb_probability(),
        pb in arb_probability(),
        alpha in 0.05f64..1.0,
        wa in 1.0f64..50.0,
        wb in 1.0f64..50.0,
    ) {
        let blocks = [(wa, pa), (wb, pb)];
        let r = rho::rho_correlated_blocks(&blocks, alpha);
        prop_assert!((0.0..=1.0).contains(&r));
        // Residual of the defining equation at the root is ~0.
        let lhs: f64 = blocks
            .iter()
            .map(|&(w, p)| w * p.powf(1.0 + r) / (p * (1.0 - alpha) + alpha))
            .sum();
        let rhs: f64 = blocks.iter().map(|&(w, p)| w * p).sum();
        prop_assert!((lhs - rhs).abs() < 1e-6 * rhs.max(1.0), "residual {}", lhs - rhs);
    }

    #[test]
    fn rho_adversarial_residual_vanishes(
        pa in arb_probability(),
        pb in arb_probability(),
        b1 in 0.05f64..0.95,
    ) {
        let blocks = [(1.0, pa), (1.0, pb)];
        let r = rho::rho_adversarial_query_blocks(&blocks, b1);
        let lhs = pa.powf(r) + pb.powf(r);
        prop_assert!((lhs - 2.0 * b1).abs() < 1e-6, "residual {}", lhs - 2.0 * b1);
    }

    #[test]
    fn rho_ours_never_exceeds_chosen_path_model(
        pa in arb_probability(),
        ratio in 1.0f64..64.0,
        alpha in 0.1f64..1.0,
    ) {
        let blocks = [(1.0, pa), (1.0, pa / ratio)];
        let ours = rho::rho_correlated_blocks(&blocks, alpha);
        let b1 = rho::model::expected_b1_correlated_blocks(&blocks, alpha);
        let b2 = rho::model::expected_b2_independent_blocks(&blocks);
        let cp = rho::rho_chosen_path(b1, b2);
        prop_assert!(ours <= cp + 1e-9, "ours={ours} cp={cp}");
    }

    #[test]
    fn profile_invariants(ps in prop::collection::vec(0.001f64..0.5, 1..200)) {
        let profile = BernoulliProfile::new(ps.clone()).unwrap();
        prop_assert_eq!(profile.d(), ps.len());
        let sum: f64 = ps.iter().sum();
        prop_assert!((profile.sum_p() - sum).abs() < 1e-9);
        for (i, &p) in ps.iter().enumerate() {
            prop_assert!((profile.log2_inv_p(i as u32) - (1.0 / p).log2()).abs() < 1e-9);
        }
        let (sorted, perm) = profile.sorted_desc();
        prop_assert!(sorted.is_sorted_desc());
        prop_assert_eq!(perm.len(), ps.len());
        prop_assert!((sorted.sum_p() - sum).abs() < 1e-9);
    }
}
