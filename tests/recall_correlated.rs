//! End-to-end Theorem 1 check: the correlated index returns the planted
//! α-correlated neighbor with high probability, across skew regimes and α
//! values, and never returns anything below its verification threshold.

use rand::{rngs::StdRng, SeedableRng};
use skewsearch::core::{
    CorrelatedIndex, CorrelatedParams, IndexOptions, Repetitions, SetSimilaritySearch,
};
use skewsearch::datagen::{correlated_query, BernoulliProfile, Dataset};

fn recall_for(profile: &BernoulliProfile, alpha: f64, n: usize, seed: u64) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let ds = Dataset::generate(profile, n, &mut rng);
    let index = CorrelatedIndex::build(
        &ds,
        profile,
        CorrelatedParams::new(alpha)
            .unwrap()
            .with_options(IndexOptions {
                repetitions: Repetitions::Fixed(10),
                ..IndexOptions::default()
            }),
        &mut rng,
    );
    let trials = 40;
    let mut hits = 0;
    for t in 0..trials {
        let target = (t * 17) % n;
        let q = correlated_query(ds.vector(target), profile, alpha, &mut rng);
        if index.search(&q).map(|m| m.id) == Some(target) {
            hits += 1;
        }
    }
    hits as f64 / trials as f64
}

#[test]
fn high_recall_on_skewed_profile() {
    let profile = BernoulliProfile::two_block(1600, 0.2, 0.02).unwrap();
    let r = recall_for(&profile, 0.8, 500, 1);
    assert!(r >= 0.85, "recall={r}");
}

#[test]
fn high_recall_on_uniform_profile() {
    // Balanced case: the structure degenerates to ChosenPath behavior but
    // must stay correct.
    let profile = BernoulliProfile::uniform(480, 0.125).unwrap();
    let r = recall_for(&profile, 0.8, 500, 2);
    assert!(r >= 0.85, "recall={r}");
}

#[test]
fn recall_survives_moderate_alpha() {
    let profile = BernoulliProfile::two_block(1600, 0.2, 0.02).unwrap();
    let r = recall_for(&profile, 0.6, 400, 3);
    assert!(r >= 0.7, "recall={r}");
}

#[test]
fn results_always_clear_threshold() {
    let profile = BernoulliProfile::two_block(1200, 0.2, 0.03).unwrap();
    let mut rng = StdRng::seed_from_u64(4);
    let ds = Dataset::generate(&profile, 300, &mut rng);
    let alpha = 0.7;
    let index = CorrelatedIndex::build(
        &ds,
        &profile,
        CorrelatedParams::new(alpha).unwrap(),
        &mut rng,
    );
    assert!((index.threshold() - alpha / 1.3).abs() < 1e-12);
    for t in 0..30 {
        let q = correlated_query(ds.vector(t), &profile, alpha, &mut rng);
        for m in index.search_all(&q) {
            assert!(m.similarity >= index.threshold());
            let real = skewsearch::sets::similarity::braun_blanquet(ds.vector(m.id), &q);
            assert!(
                (real - m.similarity).abs() < 1e-12,
                "reported sim must be exact"
            );
        }
    }
}

#[test]
fn uncorrelated_queries_return_nothing() {
    // Lemma 10 separation: independent draws sit at ~α/1.5 < α/1.3.
    let profile = BernoulliProfile::two_block(1600, 0.2, 0.02).unwrap();
    let mut rng = StdRng::seed_from_u64(5);
    let ds = Dataset::generate(&profile, 400, &mut rng);
    let index =
        CorrelatedIndex::build(&ds, &profile, CorrelatedParams::new(0.8).unwrap(), &mut rng);
    let sampler = skewsearch::datagen::VectorSampler::new(&profile);
    let mut false_hits = 0;
    for _ in 0..40 {
        let q = sampler.sample(&mut rng);
        if index.search(&q).is_some() {
            false_hits += 1;
        }
    }
    assert!(false_hits <= 1, "false hits: {false_hits}/40");
}
