//! The reproduction harness regenerates the paper's numbers: this test pins
//! the quantitative claims EXPERIMENTS.md records, so a regression in any
//! crate that silently changed an artifact shows up here.

use skewsearch::experiments::{fig1, fig2, motivating, sec7, table1};

#[test]
fn figure1_red_line_sits_below_blue_line_with_real_gap() {
    let fig = fig1::paper_setting(50);
    for p in &fig.points {
        assert!(p.rho_ours <= p.rho_chosen_path + 1e-9, "p={}", p.p);
        assert_eq!(p.rho_prefix, 1.0);
    }
    // At p = 0.5 the gap is ≈ 0.030 (0.2241 vs 0.2539) — pin loosely.
    let mid = fig
        .points
        .iter()
        .min_by(|a, b| (a.p - 0.5).abs().partial_cmp(&(b.p - 0.5).abs()).unwrap())
        .unwrap();
    assert!((mid.rho_ours - 0.224).abs() < 0.01, "ours={}", mid.rho_ours);
    assert!(
        (mid.rho_chosen_path - 0.254).abs() < 0.01,
        "cp={}",
        mid.rho_chosen_path
    );
}

#[test]
fn section71_pins_paper_constants() {
    let rows = sec7::sec71_adversarial(1usize << 40);
    // 0.528 and 0.194/0.195 are printed in the paper; 0.293 is the limit.
    assert!((rows[0].rho_chosen_path - 0.528).abs() < 0.001);
    assert!((rows[0].paper_ours - 0.293).abs() < 0.001);
    assert!(rows[0].rho_ours < 0.31);
    assert!((rows[1].rho_chosen_path - 0.195).abs() < 0.001);
    assert!(rows[1].rho_ours < 0.05);
    assert!((rows[1].rho_prefix - 0.1).abs() < 1e-9);
}

#[test]
fn section72_ours_vanishes_prefix_does_not() {
    let rows = sec7::sec72_correlated(1usize << 40, 20.0);
    assert!(rows[0].rho_ours < 0.05);
    assert!((rows[0].rho_prefix - 0.1).abs() < 1e-9);
    assert!(rows[1].rho_ours < rows[1].rho_chosen_path);
}

#[test]
fn table1_reproduces_the_dependence_regime() {
    let t = table1::from_surrogates(2000, 99);
    assert_eq!(t.rows.len(), 10);
    for r in &t.rows {
        assert!(r.ratio2 > 1.0, "{}: {}", r.name, r.ratio2);
        assert!(r.ratio3 > r.ratio2, "{}", r.name);
    }
    let spotify = t.rows.iter().find(|r| r.name.contains("SPOTIFY")).unwrap();
    let aol = t.rows.iter().find(|r| r.name.contains("AOL")).unwrap();
    assert!(spotify.ratio3 > aol.ratio3 * 3.0, "SPOTIFY must be extreme");
}

#[test]
fn figure2_shows_skew_for_every_dataset() {
    let fig = fig2::from_surrogates(1200, 5);
    assert_eq!(fig.plots.len(), 10);
    for p in &fig.plots {
        assert!(p.y_max() <= 1.0 + 1e-12);
        let slope = p.zipf_slope();
        assert!(slope < -0.05, "{}: slope {slope} not decreasing", p.name);
    }
}

#[test]
fn motivating_example_numbers() {
    let m = motivating::compute(100_000, 0.5);
    // Pinned from the analytic computation (see EXPERIMENTS.md):
    // single 0.2706, normalized split 0.2554, literal split ≈ 0.2854.
    assert!((m.rho_single - 0.2706).abs() < 0.002, "{}", m.rho_single);
    assert!((m.rho_split() - 0.2554).abs() < 0.004, "{}", m.rho_split());
    assert!(
        (m.rho_split_literal - 0.2854).abs() < 0.004,
        "{}",
        m.rho_split_literal
    );
}
