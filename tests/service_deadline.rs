//! Deadline semantics, pinned deterministically with the process-global
//! enumeration counter: a request arriving with `deadline_ms: 0` is
//! *already expired*, and the service must answer the typed
//! `deadline-exceeded` error **without performing any enumeration work** —
//! stage 1 of the pipeline never starts on a dead request.
//!
//! The counter is process-global, so everything here lives in **one** test
//! function (the same discipline as `tests/enumeration_count.rs`): a second
//! test in this binary would run on a concurrent thread and corrupt the
//! measured deltas. Other test binaries are separate processes and cannot
//! interfere.

use rand::{rngs::StdRng, SeedableRng};
use skewsearch::core::{
    enumeration_count, CorrelatedIndex, CorrelatedParams, IndexOptions, Repetitions,
    SetSimilaritySearch,
};
use skewsearch::datagen::{correlated_query, BernoulliProfile, Dataset};
use skewsearch::server::{
    share, ClientError, ErrorKind, QueryService, Server, ServerConfig, ServerHooks, ServiceClient,
    ServiceStats,
};

const REPS: usize = 5;

#[test]
fn already_expired_deadlines_answer_typed_without_any_enumeration() {
    let profile = BernoulliProfile::blocks(&[(60, 0.2), (900, 0.01)]).unwrap();
    let mut rng = StdRng::seed_from_u64(0xDEAD11);
    let ds = Dataset::generate(&profile, 150, &mut rng);
    let index = CorrelatedIndex::build(
        &ds,
        &profile,
        CorrelatedParams::new(0.7)
            .unwrap()
            .with_options(IndexOptions {
                repetitions: Repetitions::Fixed(REPS),
                ..IndexOptions::default()
            }),
        &mut rng,
    );
    let q = correlated_query(ds.vector(3), &profile, 0.7, &mut rng);
    let expected = index.search_all_tagged(&q);
    let dims: Vec<u32> = q.iter().collect();

    let service = QueryService::new(share(index));
    let stats = service.stats();
    let server = Server::bind(
        "127.0.0.1:0",
        service,
        ServerConfig::default(),
        ServerHooks::default(),
    )
    .expect("bind");
    let mut client = ServiceClient::connect(server.local_addr()).expect("connect");

    // Baseline: an undeadlined search enumerates once per repetition and
    // answers identically to the direct call.
    let before = enumeration_count();
    let served = client.search(&dims, None).expect("undeadlined search");
    assert_eq!(
        enumeration_count() - before,
        REPS as u64,
        "one enumeration per repetition for a served query"
    );
    assert_eq!(served, expected, "served == direct");

    // deadline_ms: 0 — already expired at arrival. Typed error, and the
    // enumeration counter must not move at all.
    let before = enumeration_count();
    match client.search(&dims, Some(0)) {
        Err(ClientError::Service(e)) => {
            assert_eq!(e.kind, ErrorKind::DeadlineExceeded);
        }
        other => panic!("expected deadline-exceeded, got {other:?}"),
    }
    assert_eq!(
        enumeration_count() - before,
        0,
        "an expired deadline must short-circuit before stage 1"
    );
    assert_eq!(ServiceStats::get(&stats.rejected_deadline), 1);

    // Same for a whole batch: one expired deadline covers every query in
    // the request, and none of them enumerates.
    let before = enumeration_count();
    let batch: Vec<Vec<u32>> = vec![dims.clone(), dims.clone()];
    match client.search_batch(&batch, Some(0)) {
        Err(ClientError::Service(e)) => {
            assert_eq!(e.kind, ErrorKind::DeadlineExceeded);
        }
        other => panic!("expected deadline-exceeded, got {other:?}"),
    }
    assert_eq!(enumeration_count() - before, 0, "batch short-circuits too");

    // A generous deadline changes nothing about the answer: deadlines are
    // all-or-nothing, never a filter on results.
    let served = client
        .search(&dims, Some(60_000))
        .expect("generous deadline");
    assert_eq!(served, expected, "deadline never alters a completed answer");

    drop(client);
    server.shutdown();
}
