//! The service-equivalence contract, the headline of the service layer: an
//! answer served over the wire decodes to **exactly** the direct in-process
//! `search_all_tagged` call — same matches, same `(pass, step)` tags, same
//! first-discovery order, same `f64` bit patterns — for every index type,
//! under concurrent clients, with mutations interleaved.
//!
//! Three layers:
//!
//! 1. **Read-only, all types** — each of the five index types plus
//!    `ShardedIndex` under both strategies is served to 4 concurrent
//!    clients, each comparing every response against the expected answers
//!    computed in-process before the index moved into the server.
//! 2. **Interleaved mutations** — a mutation script is applied *through the
//!    service* in chunks; after every chunk, 4 concurrent clients verify
//!    all queries against the rebuild oracle from
//!    `tests/common/mutation.rs` (the same oracle `mutation_equivalence`
//!    pins the in-process API with).
//! 3. **Proptest** — randomized op scripts through a served index, verified
//!    against the rebuild oracle by concurrent clients.
//!
//! Everything speaks real sockets: `Server::bind("127.0.0.1:0", ..)` plus
//! one `ServiceClient` per thread.

use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};
use skewsearch::baselines::{ChosenPathIndex, ChosenPathParams, MinHashLsh, MinHashParams};
use skewsearch::core::{
    AdversarialIndex, AdversarialParams, CorrelatedIndex, CorrelatedParams, CorrelatedScheme,
    IndexOptions, LsfIndex, Repetitions, SetSimilaritySearch, SplitIndex, SplitParams, TaggedMatch,
};
use skewsearch::datagen::{correlated_query, BernoulliProfile, Dataset};
use skewsearch::server::{QueryService, Server, ServerConfig, ServerHooks, ServiceClient};
use skewsearch::sets::SparseVec;

mod common;
use common::mutation::{
    build_fixed, dense_tagged, fixed_script, oracle_for, pool, queries_for, remap_tagged, resolve,
    Op, SHARD_COUNTS, STRATEGIES,
};

const CLIENTS: usize = 4;
const SEED: u64 = 0x5E81;
const ALPHA: f64 = 0.7;

fn serve(index: Box<dyn SetSimilaritySearch + Send + Sync>) -> Server {
    let service = QueryService::new(std::sync::Arc::new(std::sync::RwLock::new(index)));
    Server::bind(
        "127.0.0.1:0",
        service,
        ServerConfig::default(),
        ServerHooks::default(),
    )
    .expect("bind ephemeral port")
}

fn dims_of(q: &SparseVec) -> Vec<u32> {
    q.iter().collect()
}

/// Serves `index` and lets `CLIENTS` concurrent clients verify that every
/// query's served answer decodes to the in-process expectation, both one at
/// a time (`/search`) and as one batch (`/search_batch`).
fn assert_served_matches_expected(
    index: Box<dyn SetSimilaritySearch + Send + Sync>,
    queries: &[SparseVec],
    expected: &[Vec<TaggedMatch>],
    label: &str,
) {
    let server = serve(index);
    let addr = server.local_addr();
    std::thread::scope(|scope| {
        for c in 0..CLIENTS {
            scope.spawn(move || {
                let mut client = ServiceClient::connect(addr).expect("connect");
                // Offset the iteration per client so the four streams hit
                // the read lock in genuinely different interleavings.
                for i in 0..queries.len() {
                    let i = (i + c * 5) % queries.len();
                    let served = client
                        .search(&dims_of(&queries[i]), None)
                        .unwrap_or_else(|e| panic!("{label} client={c} q={i}: {e}"));
                    assert_eq!(
                        dense_tagged(&served),
                        dense_tagged(&expected[i]),
                        "{label} client={c} q={i}: served != direct"
                    );
                }
                let batch_dims: Vec<Vec<u32>> = queries.iter().map(dims_of).collect();
                let served = client
                    .search_batch(&batch_dims, None)
                    .unwrap_or_else(|e| panic!("{label} client={c} batch: {e}"));
                let served: Vec<_> = served.iter().map(|ms| dense_tagged(ms)).collect();
                let want: Vec<_> = expected.iter().map(|ms| dense_tagged(ms)).collect();
                assert_eq!(served, want, "{label} client={c}: batch != direct");
            });
        }
    });
    server.shutdown();
}

fn fixture(n: usize, seed: u64) -> (Dataset, BernoulliProfile, Vec<SparseVec>) {
    let profile = BernoulliProfile::blocks(&[(60, 0.2), (900, 0.01)]).unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    let ds = Dataset::generate(&profile, n, &mut rng);
    let mut queries: Vec<SparseVec> = (0..12)
        .map(|t| correlated_query(ds.vector(t * 13 % n), &profile, ALPHA, &mut rng))
        .collect();
    queries.push(SparseVec::empty()); // degenerate: served empty query
    (ds, profile, queries)
}

fn opts(reps: usize) -> IndexOptions {
    IndexOptions {
        repetitions: Repetitions::Fixed(reps),
        ..IndexOptions::default()
    }
}

/// Computes the in-process expectation, then moves the index into a server
/// and lets concurrent clients re-derive it over the wire.
fn check_served<I: SetSimilaritySearch + Send + Sync + 'static>(
    index: I,
    queries: &[SparseVec],
    label: &str,
) {
    let expected: Vec<Vec<TaggedMatch>> =
        queries.iter().map(|q| index.search_all_tagged(q)).collect();
    assert_served_matches_expected(Box::new(index), queries, &expected, label);
}

#[test]
fn served_answers_are_byte_identical_for_every_index_type() {
    let (ds, profile, queries) = fixture(220, SEED);
    let mut rng = StdRng::seed_from_u64(SEED ^ 1);

    let scheme = CorrelatedScheme::new(ALPHA, ds.n(), &profile);
    let lsf = LsfIndex::build(
        ds.vectors().to_vec(),
        profile.clone(),
        scheme,
        ALPHA / 1.3,
        opts(5),
        &mut rng,
    );
    check_served(lsf, &queries, "LsfIndex");

    let correlated = CorrelatedIndex::build(
        &ds,
        &profile,
        CorrelatedParams::new(ALPHA).unwrap().with_options(opts(5)),
        &mut rng,
    );
    check_served(correlated, &queries, "CorrelatedIndex");

    let adversarial = AdversarialIndex::build(
        &ds,
        &profile,
        AdversarialParams::new(ALPHA / 1.3)
            .unwrap()
            .with_options(opts(5)),
        &mut rng,
    );
    check_served(adversarial, &queries, "AdversarialIndex");

    let chosen_path = ChosenPathIndex::build(
        &ds,
        &profile,
        ChosenPathParams::for_correlated_model(&profile, ALPHA, 1.0 / 1.3)
            .unwrap()
            .with_options(opts(5)),
        &mut rng,
    );
    check_served(chosen_path, &queries, "ChosenPathIndex");

    let minhash = MinHashLsh::build(&ds, MinHashParams::new(0.6, 0.3).unwrap(), &mut rng);
    check_served(minhash, &queries, "MinHashLsh");
}

#[test]
fn served_split_index_matches_direct_calls() {
    // SplitIndex needs a harmonic profile; it gets its own fixture.
    let profile = BernoulliProfile::harmonic(800, 0.5).unwrap();
    let mut rng = StdRng::seed_from_u64(SEED ^ 2);
    let ds = Dataset::generate(&profile, 150, &mut rng);
    let alpha = 0.9;
    let mut queries: Vec<SparseVec> = (0..12)
        .map(|t| correlated_query(ds.vector(t * 7 % ds.n()), &profile, alpha, &mut rng))
        .collect();
    queries.push(SparseVec::empty());
    let split = SplitIndex::build(
        &ds,
        &profile,
        SplitParams {
            cut: 20,
            i1: alpha / 1.4,
            ell: None,
            options: opts(6),
        },
        &mut rng,
    );
    check_served(split, &queries, "SplitIndex");
}

#[test]
fn served_sharded_indexes_match_under_both_strategies() {
    let (ds, profile, queries) = fixture(180, SEED ^ 3);
    let mut rng = StdRng::seed_from_u64(SEED ^ 3);
    let base = CorrelatedIndex::build(
        &ds,
        &profile,
        CorrelatedParams::new(ALPHA).unwrap().with_options(opts(4)),
        &mut rng,
    );
    for strategy in STRATEGIES {
        for shards in [SHARD_COUNTS[1], SHARD_COUNTS[2]] {
            let sharded = skewsearch::core::ShardedIndex::build(&base, strategy, shards);
            check_served(sharded, &queries, &format!("{strategy:?} shards={shards}"));
        }
    }
}

/// Applies `ops` through the service's mutation endpoints (the wire
/// counterpart of `run_trait`), asserting the same dense-id contract.
fn run_ops_over_wire(client: &mut ServiceClient, ds: &Dataset, ops: &[Op]) {
    for &op in ops {
        match op {
            Op::Insert(p) => {
                let id = client.insert(&dims_of(ds.vector(p))).expect("insert");
                assert_eq!(id, p, "dense ids over the wire");
            }
            Op::Remove(slot) => {
                let _ = client.remove(slot).expect("remove");
            }
            // No compaction endpoint: the service compacts on its own
            // buffer schedule, and compaction is answer-invariant.
            Op::Compact => {}
        }
    }
}

/// After each chunk of the mutation script, `CLIENTS` concurrent clients
/// must see answers byte-identical to a from-scratch rebuild over the
/// current survivors.
#[test]
fn interleaved_mutations_over_the_wire_answer_like_a_rebuild() {
    let (ds, profile) = pool(0x5EED ^ 0x11, 200);
    let n_build = 160;
    let (ops, _) = resolve(&fixed_script(), n_build, ds.n());
    let queries = queries_for(&ds, &profile, 0xCAFE ^ 0x11, 10);

    let index = build_fixed(ds.vectors()[..n_build].to_vec(), &profile, usize::MAX);
    let server = serve(Box::new(index));
    let addr = server.local_addr();
    let mut mutator = ServiceClient::connect(addr).expect("connect");

    // Track liveness alongside the wire mutations so each chunk's oracle
    // can be rebuilt over the exact survivor set.
    let mut alive: Vec<bool> = vec![true; n_build];
    for chunk in ops.chunks(ops.len().div_ceil(3)) {
        run_ops_over_wire(&mut mutator, &ds, chunk);
        for &op in chunk {
            match op {
                Op::Insert(_) => alive.push(true),
                Op::Remove(slot) => {
                    if let Some(flag) = alive.get_mut(slot) {
                        *flag = false;
                    }
                }
                Op::Compact => {}
            }
        }
        let survivors: Vec<usize> = (0..alive.len()).filter(|&s| alive[s]).collect();
        let (oracle, compact_of) = oracle_for(&survivors, &ds, &profile);
        let expected: Vec<Vec<(u32, u32, usize, u64)>> = queries
            .iter()
            .map(|q| dense_tagged(&oracle.search_all_tagged(q)))
            .collect();
        std::thread::scope(|scope| {
            for c in 0..CLIENTS {
                let (queries, expected, compact_of) = (&queries, &expected, &compact_of);
                scope.spawn(move || {
                    let mut client = ServiceClient::connect(addr).expect("connect");
                    for (i, q) in queries.iter().enumerate() {
                        let served = client
                            .search(&dims_of(q), None)
                            .unwrap_or_else(|e| panic!("client={c} q={i}: {e}"));
                        assert_eq!(
                            remap_tagged(&served, compact_of),
                            expected[i],
                            "client={c} q={i}: served != rebuild oracle"
                        );
                    }
                });
            }
        });
    }
    // The mutator's keep-alive connection pins a worker; close it before
    // joining the server's threads.
    drop(mutator);
    server.shutdown();
}

#[test]
fn sharded_mutations_over_the_wire_answer_like_a_rebuild() {
    let (ds, profile) = pool(0x5EED ^ 0x12, 200);
    let n_build = 160;
    let (ops, survivors) = resolve(&fixed_script(), n_build, ds.n());
    let queries = queries_for(&ds, &profile, 0xBEEF ^ 0x12, 8);
    let (oracle, compact_of) = oracle_for(&survivors, &ds, &profile);
    let expected: Vec<Vec<(u32, u32, usize, u64)>> = queries
        .iter()
        .map(|q| dense_tagged(&oracle.search_all_tagged(q)))
        .collect();

    let base = build_fixed(ds.vectors()[..n_build].to_vec(), &profile, usize::MAX);
    for strategy in STRATEGIES {
        let sharded = skewsearch::core::ShardedIndex::build(&base, strategy, 3);
        let server = serve(Box::new(sharded));
        let addr = server.local_addr();
        let mut mutator = ServiceClient::connect(addr).expect("connect");
        run_ops_over_wire(&mut mutator, &ds, &ops);
        std::thread::scope(|scope| {
            for c in 0..CLIENTS {
                let (queries, expected, compact_of) = (&queries, &expected, &compact_of);
                scope.spawn(move || {
                    let mut client = ServiceClient::connect(addr).expect("connect");
                    for (i, q) in queries.iter().enumerate() {
                        let served = client
                            .search(&dims_of(q), None)
                            .unwrap_or_else(|e| panic!("{strategy:?} client={c} q={i}: {e}"));
                        assert_eq!(
                            remap_tagged(&served, compact_of),
                            expected[i],
                            "{strategy:?} client={c} q={i}"
                        );
                    }
                });
            }
        });
        drop(mutator);
        server.shutdown();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Randomized mutation scripts through the service: whatever the
    /// interleaving, concurrent clients decode answers byte-identical to
    /// the rebuild oracle over the survivors.
    #[test]
    fn random_wire_interleavings_match_rebuild(
        raw in prop::collection::vec((any::<u8>(), any::<u64>()), 1..24),
        seed in 0u64..1_000_000,
        n_build in 20usize..50,
    ) {
        let (ds, profile) = pool(seed, 80);
        let (ops, survivors) = resolve(&raw, n_build, ds.n());
        let queries = queries_for(&ds, &profile, seed ^ 0xF00D, 6);
        let (oracle, compact_of) = oracle_for(&survivors, &ds, &profile);
        let expected: Vec<Vec<(u32, u32, usize, u64)>> = queries
            .iter()
            .map(|q| dense_tagged(&oracle.search_all_tagged(q)))
            .collect();

        let index = build_fixed(ds.vectors()[..n_build].to_vec(), &profile, usize::MAX);
        let server = serve(Box::new(index));
        let addr = server.local_addr();
        let mut mutator = ServiceClient::connect(addr).expect("connect");
        run_ops_over_wire(&mut mutator, &ds, &ops);
        std::thread::scope(|scope| {
            for _ in 0..2 {
                let (queries, expected, compact_of) = (&queries, &expected, &compact_of);
                scope.spawn(move || {
                    let mut client = ServiceClient::connect(addr).expect("connect");
                    for (i, q) in queries.iter().enumerate() {
                        let served = client.search(&dims_of(q), None).expect("search");
                        assert_eq!(remap_tagged(&served, compact_of), expected[i], "q={i}");
                    }
                });
            }
        });
        drop(mutator);
        server.shutdown();
    }
}
