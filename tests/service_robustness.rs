//! Deterministic failure-path tests for the query service: overload is a
//! typed rejection, malformed input is a typed `4xx`, and neither ever
//! panics the server or silently drops a connection. **No sleeps anywhere**
//! — every ordering the tests depend on is pinned by explicit
//! channel/condvar handshakes through [`ServerHooks`].
//!
//! The overload scenario is fully scripted: one worker, queue capacity one.
//! The worker announces it claimed connection A (`before_handle`) and then
//! parks on a gate; the acceptor announces it enqueued connection B
//! (`on_admitted`). Only after both signals is C's connect attempted — the
//! queue is provably full, so C *must* get the typed `429` with
//! `Connection: close`. Releasing the gate lets A and B complete normally,
//! proving rejection sheds load without corrupting admitted work.

use skewsearch::core::{Match, MutationError, SetId, SetSimilaritySearch};
use skewsearch::server::{
    share, ClientError, ErrorKind, QueryService, Server, ServerConfig, ServerHooks, ServiceClient,
};
use skewsearch::sets::SparseVec;
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};

/// Deterministic in-memory index: every query matches every set at a fixed
/// similarity, so responses are predictable without any build RNG.
struct Toy {
    sets: Vec<Vec<u32>>,
}

impl SetSimilaritySearch for Toy {
    fn search(&self, q: &SparseVec) -> Option<Match> {
        self.search_all(q).into_iter().next()
    }
    fn search_all(&self, q: &SparseVec) -> Vec<Match> {
        self.sets
            .iter()
            .enumerate()
            .filter(|(_, s)| s.iter().any(|d| q.contains(*d)))
            .map(|(id, _)| Match {
                id,
                similarity: 0.875,
            })
            .collect()
    }
    fn insert(&mut self, set: SparseVec) -> Result<SetId, MutationError> {
        self.sets.push(set.iter().collect());
        Ok(self.sets.len() - 1)
    }
    fn remove(&mut self, _id: SetId) -> Result<bool, MutationError> {
        Err(MutationError::Unsupported)
    }
    fn supports_mutation(&self) -> bool {
        true
    }
    fn threshold(&self) -> f64 {
        0.5
    }
    fn len(&self) -> usize {
        self.sets.len()
    }
}

fn toy_service() -> QueryService {
    QueryService::new(share(Toy {
        sets: vec![vec![1, 2], vec![7, 8]],
    }))
}

/// A gate workers park on; the test opens it to release them.
#[derive(Default)]
struct Gate {
    open: Mutex<bool>,
    signal: Condvar,
}

impl Gate {
    fn wait(&self) {
        let mut open = self.open.lock().unwrap();
        while !*open {
            open = self.signal.wait(open).unwrap();
        }
    }
    fn open(&self) {
        *self.open.lock().unwrap() = true;
        self.signal.notify_all();
    }
}

#[test]
fn full_admission_queue_rejects_with_typed_429_and_recovers() {
    let service = toy_service();
    let stats = service.stats();
    let gate = Arc::new(Gate::default());
    let (claimed_tx, claimed_rx) = mpsc::channel::<()>();
    let (admitted_tx, admitted_rx) = mpsc::channel::<usize>();
    let hooks = ServerHooks {
        on_admitted: Some(Arc::new(move |depth| {
            let _ = admitted_tx.send(depth);
        })),
        before_handle: Some({
            let gate = Arc::clone(&gate);
            Arc::new(move || {
                let _ = claimed_tx.send(());
                gate.wait();
            })
        }),
    };
    let server = Server::bind(
        "127.0.0.1:0",
        service,
        ServerConfig {
            workers: 1,
            queue_capacity: 1,
            ..ServerConfig::default()
        },
        hooks,
    )
    .expect("bind");
    let addr = server.local_addr();

    // A: admitted, claimed by the only worker, which now parks on the gate.
    let client_a = ServiceClient::connect(addr).expect("connect A");
    assert_eq!(admitted_rx.recv(), Ok(1), "A enters the queue");
    claimed_rx.recv().expect("worker claims A");
    // B: admitted into the (now empty) queue. The worker is parked, so B
    // stays queued and the queue is provably full.
    let client_b = ServiceClient::connect(addr).expect("connect B");
    assert_eq!(admitted_rx.recv(), Ok(1), "B fills the queue");
    // C: must be rejected in one round trip with the typed overload error.
    let mut client_c = ServiceClient::connect(addr).expect("connect C");
    let raw = client_c
        .raw_request("POST", "/search", br#"{"dims":[1]}"#)
        .expect("C reads the rejection");
    assert_eq!(raw.status, 429);
    assert!(raw.close, "rejection closes the connection");
    let body = String::from_utf8(raw.body.clone()).unwrap();
    assert!(body.contains("\"kind\":\"overloaded\""), "{body}");
    match ServiceClient::connect(addr)
        .expect("connect C2")
        .search(&[1], None)
    {
        Err(ClientError::Service(e)) => assert_eq!(e.kind, ErrorKind::Overloaded),
        other => panic!("expected typed overload, got {other:?}"),
    }

    // Release the gate: A and B complete normally — load was shed, not
    // corrupted.
    gate.open();
    for (label, mut client) in [("A", client_a), ("B", client_b)] {
        let served = client.search(&[1], None).unwrap_or_else(|e| {
            panic!("{label} after release: {e}");
        });
        assert_eq!(served.len(), 1, "{label}");
        assert_eq!(served[0].hit.id, 0, "{label}");
    }
    assert_eq!(
        skewsearch::server::ServiceStats::get(&stats.rejected_overload),
        2
    );
    drop(claimed_rx);
    server.shutdown();
}

#[test]
fn malformed_requests_get_typed_4xx_and_never_kill_the_server() {
    let server = Server::bind(
        "127.0.0.1:0",
        toy_service(),
        ServerConfig {
            max_body_bytes: 256,
            ..ServerConfig::default()
        },
        ServerHooks::default(),
    )
    .expect("bind");
    let addr = server.local_addr();
    let mut client = ServiceClient::connect(addr).expect("connect");

    // Typed 4xx per failure mode, all on one keep-alive connection.
    for (body, wanted) in [
        (&b"not json"[..], 400u16),
        (br#"{"dims":"x"}"#, 400),
        (br#"{"dims":[-1]}"#, 400),
        (br#"{"dims":[1.5]}"#, 400),
        (br#"{"dims":[4294967296]}"#, 400),
        (br#"{"nope":[1]}"#, 400),
        (br#"{"dims":[1],"deadline_ms":"soon"}"#, 400),
        (br#"[1,2]"#, 400),
    ] {
        let raw = client.raw_request("POST", "/search", body).expect("search");
        assert_eq!(
            raw.status,
            wanted,
            "body {:?}",
            String::from_utf8_lossy(body)
        );
        assert!(!raw.close, "a clean 4xx keeps the connection alive");
        let text = String::from_utf8(raw.body.clone()).unwrap();
        assert!(text.contains("\"kind\":\"bad-request\""), "{text}");
    }
    let raw = client.raw_request("PUT", "/search", b"{}").expect("put");
    assert_eq!(raw.status, 405);
    let raw = client.raw_request("GET", "/nothing", b"").expect("get");
    assert_eq!(raw.status, 404);
    // /remove against an index whose remove() is unsupported → typed 409.
    let raw = client
        .raw_request("POST", "/remove", br#"{"id":0}"#)
        .expect("remove");
    assert_eq!(raw.status, 409);
    assert!(String::from_utf8(raw.body.clone())
        .unwrap()
        .contains("\"kind\":\"read-only\""));

    // Oversized body: typed 400, connection closed (framing is gone)...
    let big = format!(r#"{{"dims":[{}]}}"#, vec!["1"; 300].join(","));
    let raw = client
        .raw_request("POST", "/search", big.as_bytes())
        .expect("oversized");
    assert_eq!(raw.status, 400);
    assert!(raw.close);
    // ...and the *server* survives: the same client transparently
    // reconnects and gets served.
    let served = client.search(&[7], None).expect("after oversize");
    assert_eq!(served[0].hit.id, 1);

    // Raw protocol garbage (not even an HTTP request line) → typed 400.
    {
        use std::io::{Read, Write};
        let mut sock = std::net::TcpStream::connect(addr).expect("raw connect");
        sock.write_all(b"quack\r\n\r\n").expect("write garbage");
        let mut response = String::new();
        sock.read_to_string(&mut response).expect("read rejection");
        assert!(response.starts_with("HTTP/1.1 400"), "{response}");
        assert!(response.contains("Connection: close"), "{response}");
    }
    // The server is still healthy afterwards.
    let health = client.healthz().expect("healthz");
    assert_eq!(
        health.get("ok").and_then(skewsearch::server::Json::as_bool),
        Some(true)
    );
    drop(client);
    server.shutdown();
}

#[test]
fn stats_histogram_is_live_and_monotone() {
    let server = Server::bind(
        "127.0.0.1:0",
        toy_service(),
        ServerConfig::default(),
        ServerHooks::default(),
    )
    .expect("bind");
    let addr = server.local_addr();
    let mut client = ServiceClient::connect(addr).expect("connect");

    let count_of = |stats: &skewsearch::server::Json| {
        stats
            .get("latency")
            .and_then(|l| l.get("count"))
            .and_then(skewsearch::server::Json::as_u64)
            .expect("latency.count")
    };
    let before = client.stats().expect("stats");
    assert_eq!(count_of(&before), 0, "fresh server has an empty histogram");
    let n = 5;
    for _ in 0..n {
        client.search(&[1], None).expect("search");
    }
    let after = client.stats().expect("stats");
    assert_eq!(count_of(&after), n, "every search is recorded");
    assert!(
        after
            .get("latency")
            .and_then(|l| l.get("p99_ns"))
            .and_then(skewsearch::server::Json::as_u64)
            .expect("p99")
            > 0,
        "quantiles come from real recordings"
    );
    assert_eq!(
        after
            .get("requests")
            .and_then(|r| r.get("search"))
            .and_then(skewsearch::server::Json::as_u64),
        Some(n)
    );
    drop(client);
    server.shutdown();
}
