//! Golden-file fixtures pinning the service's wire format byte-for-byte:
//! one fixture per endpoint (success and failure shapes), each holding the
//! **exact** HTTP response bytes — status line, headers, and NDJSON body.
//!
//! Every exchange runs against a *fresh* server over the same deterministic
//! toy index, so counters, histogram, and ids are all reproducible and the
//! full response (including `/stats`) is a pure function of the request.
//! Responses carry no `Date`/`Server` headers by design
//! (`Response::http_bytes` is the single serialization site).
//!
//! Regenerate after an intentional format change with:
//! `SKEWSEARCH_BLESS=1 cargo test --test service_wire_golden`
//! and review the diff — a fixture churn IS a wire-format break and must be
//! called out in `docs/SERVICE.md`'s changelog.

use skewsearch::core::{Match, MutationError, SetId, SetSimilaritySearch};
use skewsearch::server::{share, QueryService, Server, ServerConfig, ServerHooks, ServiceClient};
use skewsearch::sets::SparseVec;
use std::path::PathBuf;

/// Deterministic toy index: id 0 holds {1,2}, id 1 holds {7,8}; any query
/// touching a set matches it at similarity 0.875 (a dyadic rational, so its
/// decimal rendering is short and stable).
struct Toy {
    sets: Vec<Vec<u32>>,
}

impl SetSimilaritySearch for Toy {
    fn search(&self, q: &SparseVec) -> Option<Match> {
        self.search_all(q).into_iter().next()
    }
    fn search_all(&self, q: &SparseVec) -> Vec<Match> {
        self.sets
            .iter()
            .enumerate()
            .filter(|(_, s)| s.iter().any(|d| q.contains(*d)))
            .map(|(id, _)| Match {
                id,
                similarity: 0.875,
            })
            .collect()
    }
    fn insert(&mut self, set: SparseVec) -> Result<SetId, MutationError> {
        self.sets.push(set.iter().collect());
        Ok(self.sets.len() - 1)
    }
    fn remove(&mut self, _id: SetId) -> Result<bool, MutationError> {
        Err(MutationError::Unsupported)
    }
    fn supports_mutation(&self) -> bool {
        true
    }
    fn threshold(&self) -> f64 {
        0.5
    }
    fn len(&self) -> usize {
        self.sets.len()
    }
}

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/wire")
        .join(format!("{name}.http"))
}

/// One scripted exchange: endpoint, request body, fixture name.
const EXCHANGES: &[(&str, &str, &[u8], &str)] = &[
    ("GET", "/healthz", b"", "healthz"),
    ("GET", "/stats", b"", "stats_fresh"),
    ("POST", "/search", br#"{"dims":[1]}"#, "search_hit"),
    ("POST", "/search", br#"{"dims":[99]}"#, "search_miss"),
    (
        "POST",
        "/search",
        br#"{"dims":[1],"deadline_ms":0}"#,
        "search_deadline_exceeded",
    ),
    (
        "POST",
        "/search_batch",
        br#"{"queries":[[1],[7],[99]]}"#,
        "search_batch",
    ),
    ("POST", "/insert", br#"{"dims":[5,6]}"#, "insert"),
    ("POST", "/remove", br#"{"id":0}"#, "remove_read_only"),
    ("POST", "/search", b"not json", "bad_request"),
    ("GET", "/unknown", b"", "not_found"),
    ("PUT", "/search", b"{}", "method_not_allowed"),
];

#[test]
fn response_bytes_match_the_golden_fixtures_per_endpoint() {
    let bless = std::env::var_os("SKEWSEARCH_BLESS").is_some();
    let mut mismatches = Vec::new();
    for &(method, path, body, name) in EXCHANGES {
        // Fresh server per exchange: every response — /stats included — is
        // a pure function of this single request.
        let service = QueryService::new(share(Toy {
            sets: vec![vec![1, 2], vec![7, 8]],
        }));
        let server = Server::bind(
            "127.0.0.1:0",
            service,
            ServerConfig::default(),
            ServerHooks::default(),
        )
        .expect("bind");
        let mut client = ServiceClient::connect(server.local_addr()).expect("connect");
        let raw = client
            .raw_request(method, path, body)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        drop(client);
        server.shutdown();

        let file = fixture_path(name);
        if bless {
            std::fs::create_dir_all(file.parent().unwrap()).unwrap();
            std::fs::write(&file, &raw.bytes).unwrap();
            continue;
        }
        let want = std::fs::read(&file).unwrap_or_else(|e| {
            panic!(
                "{name}: cannot read {} ({e}); regenerate with SKEWSEARCH_BLESS=1",
                file.display()
            )
        });
        if raw.bytes != want {
            mismatches.push(format!(
                "{name}: served bytes differ from {}\n--- golden ---\n{}\n--- served ---\n{}",
                file.display(),
                String::from_utf8_lossy(&want),
                String::from_utf8_lossy(&raw.bytes),
            ));
        }
    }
    assert!(mismatches.is_empty(), "{}", mismatches.join("\n\n"));
}

#[test]
fn stats_after_traffic_still_decodes_and_counts_exactly() {
    // Not a byte fixture (the latency histogram depends on real timings) but
    // pins the *schema* and the deterministic counter values after a known
    // request mix.
    let service = QueryService::new(share(Toy {
        sets: vec![vec![1, 2], vec![7, 8]],
    }));
    let server = Server::bind(
        "127.0.0.1:0",
        service,
        ServerConfig::default(),
        ServerHooks::default(),
    )
    .expect("bind");
    let mut client = ServiceClient::connect(server.local_addr()).expect("connect");
    client.search(&[1], None).expect("search");
    client.search(&[2], None).expect("search");
    client
        .search_batch(&[vec![1], vec![7]], None)
        .expect("batch");
    client.insert(&[9]).expect("insert");
    let _ = client.raw_request("POST", "/search", b"broken");
    let stats = client.stats().expect("stats");
    let get = |path: [&str; 2]| {
        stats
            .get(path[0])
            .and_then(|v| v.get(path[1]))
            .and_then(skewsearch::server::Json::as_u64)
            .unwrap_or_else(|| panic!("missing {path:?}"))
    };
    assert_eq!(get(["requests", "search"]), 2);
    assert_eq!(get(["requests", "search_batch"]), 1);
    assert_eq!(get(["requests", "insert"]), 1);
    assert_eq!(get(["requests", "remove"]), 0);
    assert_eq!(get(["rejected", "client_error"]), 1);
    assert_eq!(get(["rejected", "overload"]), 0);
    assert_eq!(get(["rejected", "deadline"]), 0);
    assert_eq!(get(["index", "live_sets"]), 3);
    assert_eq!(get(["latency", "count"]), 3, "2 searches + 1 batch");
    drop(client);
    server.shutdown();
}
