//! Sharding semantics: for every index type, a `ShardedIndex` must answer
//! `search`, `search_all`, `search_all_tagged`, `search_batch`, and
//! `search_batch_best` **byte-identically** to the unsharded index it was
//! partitioned from — under both strategies, at every shard count, including
//! degenerate partitions where some shards are empty.
//!
//! Deterministic tests pin the 5 index types × 2 strategies × {1, 8} shards
//! grid from the acceptance criteria; a proptest block then randomizes the
//! dataset, correlation, and shard count over {1, 3, 8}.
//!
//! Thread counts: the per-query shard fan-out and the batch executor are
//! exercised at 1 and 8 workers, plus the value of `SKEWSEARCH_TEST_THREADS`
//! when set (CI sets it to `nproc` on multicore hosts so these suites run at
//! real parallelism — see `.github/workflows/ci.yml`).

use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};
use skewsearch::baselines::{ChosenPathIndex, ChosenPathParams, MinHashLsh, MinHashParams};
use skewsearch::core::{
    AdversarialIndex, AdversarialParams, CorrelatedIndex, CorrelatedParams, CorrelatedScheme,
    IndexOptions, LsfIndex, Repetitions, SetSimilaritySearch, ShardStrategy, Shardable,
    ShardedIndex,
};
use skewsearch::datagen::{correlated_query, BernoulliProfile, Dataset};
use skewsearch::sets::SparseVec;

mod common;
use common::thread_counts;

const SEED: u64 = 0x54A8D;
const ALPHA: f64 = 0.7;
const STRATEGIES: [ShardStrategy; 2] = [ShardStrategy::ByRepetition, ShardStrategy::ByDataset];

fn fixture(n: usize, seed: u64) -> (Dataset, BernoulliProfile, Vec<SparseVec>) {
    let profile = BernoulliProfile::blocks(&[(60, 0.2), (900, 0.01)]).unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    let ds = Dataset::generate(&profile, n, &mut rng);
    let mut queries: Vec<SparseVec> = (0..30)
        .map(|t| correlated_query(ds.vector(t * 11 % n.max(1)), &profile, ALPHA, &mut rng))
        .collect();
    queries.push(SparseVec::empty()); // degenerate query rides along
    (ds, profile, queries)
}

fn opts(reps: usize) -> IndexOptions {
    IndexOptions {
        repetitions: Repetitions::Fixed(reps),
        ..IndexOptions::default()
    }
}

/// The core assertion: every trait entry point of the sharded wrapper equals
/// the unsharded index's answer, byte for byte, at every worker count.
fn assert_sharded_identical<I: Shardable + Send + Sync>(
    index: &I,
    queries: &[SparseVec],
    shard_counts: &[usize],
    label: &str,
) {
    let all: Vec<_> = queries.iter().map(|q| index.search_all(q)).collect();
    let tagged: Vec<_> = queries.iter().map(|q| index.search_all_tagged(q)).collect();
    let first: Vec<_> = queries.iter().map(|q| index.search(q)).collect();
    let first_tagged: Vec<_> = queries
        .iter()
        .map(|q| index.search_first_tagged(q))
        .collect();
    let best: Vec<_> = queries.iter().map(|q| index.search_best(q)).collect();
    for strategy in STRATEGIES {
        for &shards in shard_counts {
            for threads in thread_counts() {
                let sharded = ShardedIndex::build(index, strategy, shards)
                    .with_fanout_threads(threads)
                    .with_query_threads(threads);
                let ctx = format!("{label} {strategy:?} shards={shards} threads={threads}");
                assert_eq!(sharded.len(), index.len(), "{ctx}");
                assert_eq!(sharded.threshold(), index.threshold(), "{ctx}");
                for (i, q) in queries.iter().enumerate() {
                    assert_eq!(sharded.search_all(q), all[i], "{ctx} q={i}");
                    assert_eq!(sharded.search_all_tagged(q), tagged[i], "{ctx} q={i}");
                    assert_eq!(sharded.search(q), first[i], "{ctx} q={i}");
                    assert_eq!(
                        sharded.search_first_tagged(q),
                        first_tagged[i],
                        "{ctx} q={i}"
                    );
                }
                assert_eq!(sharded.search_batch(queries), all, "{ctx}");
                assert_eq!(sharded.search_batch_best(queries), best, "{ctx}");
            }
        }
    }
}

#[test]
fn lsf_index_shard_equivalence() {
    let (ds, profile, queries) = fixture(250, SEED);
    let mut rng = StdRng::seed_from_u64(SEED ^ 1);
    let scheme = CorrelatedScheme::new(ALPHA, ds.n(), &profile);
    let index = LsfIndex::build(
        ds.vectors().to_vec(),
        profile.clone(),
        scheme,
        ALPHA / 1.3,
        opts(6),
        &mut rng,
    );
    assert_sharded_identical(&index, &queries, &[1, 8], "LsfIndex");
}

#[test]
fn mutated_lsf_index_shard_equivalence() {
    // Sharding an index that has been mutated — live tombstones, a delta
    // segment, and a compacted region — must still be byte-identical under
    // both strategies: `ByDataset` routes every slot (dead ones included, to
    // keep the id maps dense) and `ByRepetition` carries the segments
    // verbatim. See `tests/mutation_equivalence.rs` for the rebuild oracle.
    let (ds, profile, queries) = fixture(250, SEED ^ 8);
    let mut rng = StdRng::seed_from_u64(SEED ^ 9);
    let scheme = CorrelatedScheme::new(ALPHA, 220, &profile);
    let mut index = LsfIndex::build(
        ds.vectors()[..220].to_vec(),
        profile.clone(),
        scheme,
        ALPHA / 1.3,
        opts(6),
        &mut rng,
    );
    for id in [0usize, 7, 100, 219] {
        assert!(index.remove_set(id));
    }
    for t in 220..250 {
        index.insert_set(ds.vector(t).clone());
    }
    assert!(index.remove_set(230), "a fresh insert dies too");
    assert_sharded_identical(&index, &queries, &[1, 3, 8], "mutated LsfIndex");
    // Compaction folds the delta into the base without renumbering, so the
    // sharded mirrors must not notice.
    index.compact();
    assert_sharded_identical(&index, &queries, &[1, 3, 8], "compacted LsfIndex");
}

#[test]
fn correlated_index_shard_equivalence() {
    let (ds, profile, queries) = fixture(250, SEED);
    let mut rng = StdRng::seed_from_u64(SEED ^ 2);
    let params = CorrelatedParams::new(ALPHA).unwrap().with_options(opts(6));
    let index = CorrelatedIndex::build(&ds, &profile, params, &mut rng);
    assert_sharded_identical(&index, &queries, &[1, 8], "CorrelatedIndex");
}

#[test]
fn adversarial_index_shard_equivalence() {
    let (ds, profile, queries) = fixture(250, SEED);
    let mut rng = StdRng::seed_from_u64(SEED ^ 3);
    let params = AdversarialParams::new(ALPHA / 1.3)
        .unwrap()
        .with_options(opts(6));
    let index = AdversarialIndex::build(&ds, &profile, params, &mut rng);
    assert_sharded_identical(&index, &queries, &[1, 8], "AdversarialIndex");
}

#[test]
fn chosen_path_index_shard_equivalence() {
    let (ds, profile, queries) = fixture(250, SEED);
    let mut rng = StdRng::seed_from_u64(SEED ^ 4);
    let params = ChosenPathParams::for_correlated_model(&profile, ALPHA, 1.0 / 1.3)
        .unwrap()
        .with_options(opts(6));
    let index = ChosenPathIndex::build(&ds, &profile, params, &mut rng);
    assert_sharded_identical(&index, &queries, &[1, 8], "ChosenPathIndex");
}

#[test]
fn minhash_shard_equivalence() {
    let (ds, _, queries) = fixture(250, SEED);
    let mut rng = StdRng::seed_from_u64(SEED ^ 5);
    let params = MinHashParams::new(0.6, 0.3).unwrap();
    let index = MinHashLsh::build(&ds, params, &mut rng);
    assert_sharded_identical(&index, &queries, &[1, 8], "MinHashLsh");
}

#[test]
fn empty_shards_from_tiny_datasets_are_exact() {
    // 5 vectors over 8 dataset shards: at least three shards hold nothing.
    // 3 repetitions over 8 repetition shards: at least five passes-shards
    // are empty. Both partitions must still be byte-identical.
    let (ds, profile, _) = fixture(5, SEED ^ 6);
    let mut rng = StdRng::seed_from_u64(SEED ^ 6);
    let params = CorrelatedParams::new(ALPHA).unwrap().with_options(opts(3));
    let index = CorrelatedIndex::build(&ds, &profile, params, &mut rng);
    let queries: Vec<SparseVec> = (0..5)
        .map(|t| correlated_query(ds.vector(t), &profile, ALPHA, &mut rng))
        .chain(std::iter::once(SparseVec::empty()))
        .collect();
    for strategy in STRATEGIES {
        let sharded = ShardedIndex::build(&index, strategy, 8);
        assert_eq!(sharded.shard_count(), 8);
        if strategy == ShardStrategy::ByDataset {
            assert!(
                sharded.shard_lens().iter().filter(|&&l| l == 0).count() >= 3,
                "expected empty shards, got {:?}",
                sharded.shard_lens()
            );
        }
        for q in &queries {
            assert_eq!(sharded.search_all(q), index.search_all(q), "{strategy:?}");
        }
    }
}

#[test]
fn empty_index_shards_find_nothing() {
    let profile = BernoulliProfile::uniform(50, 0.2).unwrap();
    let mut rng = StdRng::seed_from_u64(SEED ^ 7);
    let scheme = CorrelatedScheme::new(0.5, 2, &profile);
    let index: LsfIndex<CorrelatedScheme> = LsfIndex::build(
        vec![],
        profile,
        scheme,
        0.5,
        IndexOptions::default(),
        &mut rng,
    );
    for strategy in STRATEGIES {
        let sharded = ShardedIndex::build(&index, strategy, 4);
        assert!(sharded.is_empty());
        assert!(sharded
            .search(&SparseVec::from_unsorted(vec![1, 2]))
            .is_none());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Randomized sweep of the acceptance grid: all five index types, both
    /// strategies, shard counts drawn from {1, 3, 8}, over random dataset
    /// sizes (small enough that 8-way dataset partitions regularly produce
    /// empty shards).
    #[test]
    fn sharded_equals_unsharded_for_all_index_types(
        seed in 0u64..1_000_000,
        shards_ix in 0usize..3,
        n in 40usize..120,
    ) {
        let shard_counts = [1usize, 3, 8];
        let shards = [shard_counts[shards_ix]];
        let (ds, profile, queries) = fixture(n, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xF00D);
        // First eleven correlated queries plus the trailing empty query.
        let queries: Vec<SparseVec> = queries[..11]
            .iter()
            .chain(queries.last())
            .cloned()
            .collect();
        let queries = &queries[..];

        let scheme = CorrelatedScheme::new(ALPHA, ds.n(), &profile);
        let lsf = LsfIndex::build(
            ds.vectors().to_vec(),
            profile.clone(),
            scheme,
            ALPHA / 1.3,
            opts(3),
            &mut rng,
        );
        assert_sharded_identical(&lsf, queries, &shards, "prop LsfIndex");

        let correlated = CorrelatedIndex::build(
            &ds,
            &profile,
            CorrelatedParams::new(ALPHA).unwrap().with_options(opts(3)),
            &mut rng,
        );
        assert_sharded_identical(&correlated, queries, &shards, "prop CorrelatedIndex");

        let adversarial = AdversarialIndex::build(
            &ds,
            &profile,
            AdversarialParams::new(ALPHA / 1.3).unwrap().with_options(opts(3)),
            &mut rng,
        );
        assert_sharded_identical(&adversarial, queries, &shards, "prop AdversarialIndex");

        let chosen_path = ChosenPathIndex::build(
            &ds,
            &profile,
            ChosenPathParams::for_correlated_model(&profile, ALPHA, 1.0 / 1.3)
                .unwrap()
                .with_options(opts(3)),
            &mut rng,
        );
        assert_sharded_identical(&chosen_path, queries, &shards, "prop ChosenPathIndex");

        let minhash = MinHashLsh::build(&ds, MinHashParams::new(0.6, 0.3).unwrap(), &mut rng);
        assert_sharded_identical(&minhash, queries, &shards, "prop MinHashLsh");
    }
}
