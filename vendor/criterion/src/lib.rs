//! Offline, vendored stand-in for the `criterion` benchmark harness.
//!
//! Implements the API surface this workspace's benches use — `Criterion`
//! builder methods, `benchmark_group`/`bench_function`/`bench_with_input`,
//! `BenchmarkId`, `black_box`, and the `criterion_group!`/`criterion_main!`
//! macros — with a simple warm-up + timed-samples loop that prints the mean
//! wall-clock time per iteration. No statistics, plots, or CLI filtering;
//! `--bench`-style extra args are accepted and ignored so `cargo bench`
//! invocations pass through. The one recognized flag is real Criterion's
//! `--quick` (also `CRITERION_QUICK=1` in the environment), which shrinks
//! every budget so CI can smoke-execute the whole suite.

// The harness's entire job is timing; the workspace-wide Instant::now ban
// targets library code, not the bench clock itself.
#![allow(clippy::disallowed_methods)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness state and configuration.
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_millis(1000),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Time spent running the routine untimed before sampling.
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    /// Target total time across all timed samples.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Applies harness CLI/env configuration. Like real Criterion, the
    /// `--quick` flag (or `CRITERION_QUICK=1` in the environment) collapses
    /// the warm-up and measurement budgets to a single short sample, so
    /// `cargo bench -- --quick` smoke-executes every bench in seconds — the
    /// mode CI uses to catch bench rot without paying for real measurements.
    /// All other `--bench`-style args are accepted and ignored.
    pub fn configure_from_args(mut self) -> Self {
        let quick = std::env::args().any(|a| a == "--quick")
            || std::env::var("CRITERION_QUICK")
                .is_ok_and(|v| v == "1" || v.eq_ignore_ascii_case("true"));
        if quick {
            self.sample_size = 1;
            self.warm_up_time = Duration::from_millis(1);
            self.measurement_time = Duration::from_millis(1);
        }
        self
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(self.clone(), name, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            config: self.clone(),
            name: name.into(),
            _parent: self,
        }
    }
}

/// Identifier for a parameterized benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    config: Criterion,
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(self.config.clone(), &format!("{}/{}", self.name, name), f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(
            self.config.clone(),
            &format!("{}/{}", self.name, id.label),
            |b| f(b, input),
        );
        self
    }

    pub fn finish(self) {}
}

/// Timing driver handed to each benchmark closure.
pub struct Bencher {
    warm_up_time: Duration,
    sample_size: usize,
    measurement_time: Duration,
    /// Mean time per iteration, filled in by [`Bencher::iter`].
    mean: Option<Duration>,
}

impl Bencher {
    /// Times `routine`: warm-up until the configured warm-up budget is
    /// spent, then `sample_size` timed samples spread over the measurement
    /// budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
        // Aim for the measurement budget overall; at least 1 iter per sample.
        let iters_per_sample = ((self.measurement_time.as_secs_f64()
            / self.sample_size as f64
            / per_iter.max(1e-9)) as u64)
            .max(1);
        let mut total = Duration::ZERO;
        let mut iters: u64 = 0;
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            total += t.elapsed();
            iters += iters_per_sample;
        }
        self.mean = Some(Duration::from_secs_f64(
            total.as_secs_f64() / iters.max(1) as f64,
        ));
    }
}

fn run_one<F: FnMut(&mut Bencher)>(config: Criterion, name: &str, mut f: F) {
    let mut b = Bencher {
        warm_up_time: config.warm_up_time,
        sample_size: config.sample_size,
        measurement_time: config.measurement_time,
        mean: None,
    };
    f(&mut b);
    match b.mean {
        Some(mean) => println!("{name:<56} mean {mean:>12.3?}/iter"),
        None => println!("{name:<56} (no iter() call)"),
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default().configure_from_args();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2));
        let mut calls = 0u64;
        c.bench_function("smoke", |b| b.iter(|| calls += 1));
        assert!(calls > 0);
    }

    #[test]
    fn group_paths_compose() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2));
        let mut g = c.benchmark_group("g");
        g.bench_with_input(BenchmarkId::new("f", 7), &3u32, |b, &x| {
            b.iter(|| black_box(x + 1))
        });
        g.finish();
    }
}
