//! Offline, vendored stand-in for the `proptest` crate.
//!
//! Implements exactly the surface this workspace's property tests use:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`] /
//!   [`prop_assume!`],
//! * [`Strategy`] with [`Strategy::prop_map`],
//! * `any::<T>()`, numeric range strategies, tuple strategies, and
//!   `prop::collection::vec`.
//!
//! Differences from real proptest: no shrinking (a failing case reports its
//! deterministic seed instead so it can be replayed), and generation is
//! driven by the vendored [`rand`] crate. Case counts and rejection limits
//! follow [`ProptestConfig`].

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Configuration for a `proptest!` block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases each test must pass.
    pub cases: u32,
    /// Maximum number of `prop_assume!` rejections before giving up.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

impl ProptestConfig {
    /// A config running `cases` successful cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed; the message describes it.
    Fail(String),
    /// `prop_assume!` rejected the inputs; try another case.
    Reject,
}

/// Result type produced by the body of each generated test case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// A generator of values for property tests.
///
/// Unlike real proptest there is no shrinking tree; `generate` directly
/// produces a value from the RNG.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Types with a canonical "whole domain" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_via_standard {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.random::<$t>()
            }
        }
    )*};
}
impl_arbitrary_via_standard!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, bool);

impl Arbitrary for f64 {
    /// Finite doubles spanning many magnitudes (uniform bit patterns would
    /// mostly be astronomically large; mix scales instead).
    fn arbitrary(rng: &mut StdRng) -> Self {
        let mantissa = rng.random::<f64>() * 2.0 - 1.0;
        let exp = rng.random_range(-64i32..=64) as f64;
        mantissa * exp.exp2()
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        f64::arbitrary(rng) as f32
    }
}

/// Strategy for `any::<T>()`.
pub struct Any<T>(std::marker::PhantomData<T>);

/// The canonical strategy for the whole domain of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Collection strategies (`prop::collection::*`).
pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng;
    use std::ops::Range;

    /// Length distribution for [`vec`].
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    /// Strategy producing `Vec`s of values from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `prop::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.random_range(self.size.lo..self.size.hi_exclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Stable 64-bit FNV-1a over the test name: per-test deterministic seed base.
pub fn seed_for(test_name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Runs `body` against `config.cases` generated cases. Used by the
/// [`proptest!`] macro; not part of the public API of real proptest.
pub fn run_cases<F>(test_name: &str, config: &ProptestConfig, mut body: F)
where
    F: FnMut(&mut StdRng) -> TestCaseResult,
{
    let base = seed_for(test_name);
    let mut passed = 0u32;
    let mut rejected = 0u32;
    let mut case = 0u64;
    while passed < config.cases {
        let seed = base.wrapping_add(case);
        case += 1;
        let mut rng = StdRng::seed_from_u64(seed);
        match body(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                if rejected > config.max_global_rejects {
                    panic!(
                        "proptest '{test_name}': too many prop_assume! rejections \
                         ({rejected}) before reaching {} cases",
                        config.cases
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "proptest '{test_name}' failed at case #{} (replay seed {seed:#x}):\n{msg}",
                    passed + 1
                );
            }
        }
    }
}

/// Formats a failed binary assertion for [`prop_assert_eq!`]/`_ne!`.
pub fn format_binop_failure(
    op: &str,
    left_expr: &str,
    right_expr: &str,
    left: &dyn fmt::Debug,
    right: &dyn fmt::Debug,
) -> String {
    format!(
        "assertion failed: `{left_expr} {op} {right_expr}`\n  left: {left:?}\n right: {right:?}"
    )
}

/// Most-used items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Any, Arbitrary,
        ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };

    /// Namespaced access to strategy modules, mirroring
    /// `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::core::result::Result::Err($crate::TestCaseError::Fail(
                        $crate::format_binop_failure(
                            "==",
                            stringify!($left),
                            stringify!($right),
                            l,
                            r,
                        ),
                    ));
                }
            }
        }
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if *l == *r {
                    return ::core::result::Result::Err($crate::TestCaseError::Fail(
                        $crate::format_binop_failure(
                            "!=",
                            stringify!($left),
                            stringify!($right),
                            l,
                            r,
                        ),
                    ));
                }
            }
        }
    };
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@tests ($config) $($rest)*);
    };
    (@tests ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:pat in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            $crate::run_cases(stringify!($name), &config, |proptest_case_rng| {
                let _ = &proptest_case_rng;
                $(let $arg = $crate::Strategy::generate(&($strat), proptest_case_rng);)*
                (move || -> $crate::TestCaseResult {
                    $body
                    ::core::result::Result::Ok(())
                })()
            });
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@tests ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, f in 0.0f64..=1.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.0..=1.0).contains(&f));
        }

        #[test]
        fn vec_strategy_respects_len(v in prop::collection::vec(any::<u64>(), 2..9)) {
            prop_assert!((2..9).contains(&v.len()));
        }

        #[test]
        fn prop_map_applies(v in (0u32..10).prop_map(|x| x * 2)) {
            prop_assert!(v % 2 == 0);
            prop_assert!(v < 20);
        }

        #[test]
        fn assume_rejects(x in any::<u64>()) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
            prop_assert_ne!(x % 2, 1);
        }
    }

    #[test]
    fn seeds_are_stable() {
        assert_eq!(crate::seed_for("abc"), crate::seed_for("abc"));
        assert_ne!(crate::seed_for("abc"), crate::seed_for("abd"));
    }
}
