//! Offline, vendored stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the workspace
//! vendors the small slice of the `rand` 0.9 API it actually uses:
//!
//! * [`rngs::StdRng`] — a deterministic xoshiro256++ generator seeded via
//!   SplitMix64 (the same construction the real `rand_chacha`-backed `StdRng`
//!   replaces; quality is far beyond what the test-suite needs);
//! * [`SeedableRng::seed_from_u64`];
//! * [`Rng::random`] / [`Rng::random_range`] / [`Rng::random_bool`].
//!
//! Everything is `no_std`-free plain Rust with zero dependencies. The
//! generators are fully deterministic: the same seed always yields the same
//! stream on every platform (only fixed-width integer ops are used).

use std::ops::{Range, RangeInclusive};

/// Low-level uniform-bit generator interface.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be produced uniformly from an RNG (the `StandardUniform`
/// distribution of real `rand`, collapsed into one trait for the stub).
pub trait Standard: Sized {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for i128 {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::generate(rng) as i128
    }
}

impl Standard for bool {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u128;
                // Multiply-shift maps 64 uniform bits onto [0, span) with
                // bias < 2^-64 — indistinguishable at test scale.
                let hi = (rng.next_u64() as u128 * span) >> 64;
                self.start + hi as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u128 + 1;
                let hi = (rng.next_u64() as u128 * span) >> 64;
                start + hi as $t
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_sint {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = self.end.wrapping_sub(self.start) as $u as u128;
                let hi = (rng.next_u64() as u128 * span) >> 64;
                self.start.wrapping_add(hi as $u as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = end.wrapping_sub(start) as $u as u128 + 1;
                let hi = (rng.next_u64() as u128 * span) >> 64;
                start.wrapping_add(hi as $u as $t)
            }
        }
    )*};
}
impl_sample_range_sint!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as Standard>::generate(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let u = <$t as Standard>::generate(rng);
                // Scale the half-open unit sample up so `end` is reachable.
                let x = start + u * (end - start) * (1.0 + <$t>::EPSILON);
                if x > end { end } else { x }
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// High-level sampling interface, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (uniform over the type's domain; `[0, 1)` for floats).
    fn random<T: Standard>(&mut self) -> T {
        T::generate(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be in [0, 1]");
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from seeds.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed, expanding it with SplitMix64.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator: the workspace's standard RNG.
    ///
    /// Seeded through SplitMix64 per Blackman & Vigna's recommendation so
    /// that nearby seeds yield uncorrelated streams.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for word in &mut s {
                *word = splitmix64(&mut sm);
            }
            // All-zero state is a fixed point of xoshiro; SplitMix64 cannot
            // produce it from any seed, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Convenience: one-off sample from a freshly seeded generator is not
/// supported (no OS entropy in the offline stub); seed explicitly instead.
#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.random::<f64>();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let x = rng.random_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.random_range(0u32..=5);
            assert!(y <= 5);
        }
    }

    #[test]
    fn rough_uniformity() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[rng.random_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c}");
        }
    }
}
